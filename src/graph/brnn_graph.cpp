#include "graph/brnn_graph.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <utility>

#include "graph/passes/registry.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "obs/trace.hpp"
#include "kernels/quant.hpp"
#include "rnn/flops.hpp"
#include "rnn/merge.hpp"
#include "rnn/quantized.hpp"
#include "util/check.hpp"

namespace bpar::graph {

using rnn::CellType;
using rnn::NetworkConfig;
using taskrt::Access;
using taskrt::in;
using taskrt::inout;
using taskrt::out;
using taskrt::TaskId;
using taskrt::TaskKind;
using taskrt::TaskSpec;
using tensor::ConstMatrixView;
using tensor::MatrixView;

// Per-replica build context. In executable mode all addresses come from the
// replica's real buffers; in shape-only mode (simulator input for
// configurations too large to allocate) they come from a synthetic byte
// arena with one byte per logical buffer, which yields the identical
// dependency structure at negligible memory cost.
struct TrainingProgram::ReplicaCtx {
  TrainingProgram& prog;
  int rep;
  int r0;  // first batch row of this replica
  int rb;  // rows in this replica
  rnn::Workspace* ws = nullptr;       // executable mode only
  rnn::NetworkGrads* grads = nullptr; // executable mode only

  // Shape-mode arena layout (offsets into this replica's arena buffer).
  const char* arena_data = nullptr;
  std::size_t h_base = 0, dh_base = 0, dc_base = 0, merged_base = 0,
              dmerged_base = 0, probs_base = 0, dlogits_base = 0,
              x_base = 0, sink_base = 0, grads_base = 0, final_base = 0,
              dx_base = 0;

  [[nodiscard]] const NetworkConfig& cfg() const { return prog.cfg_; }
  [[nodiscard]] int layers() const { return cfg().num_layers; }
  [[nodiscard]] int steps() const { return cfg().seq_length; }
  [[nodiscard]] int merged_layers() const {
    return cfg().many_to_many ? layers() : layers() - 1;
  }
  [[nodiscard]] int outputs() const {
    return cfg().many_to_many ? steps() : 1;
  }

  [[nodiscard]] const void* arena_at(std::size_t base, std::size_t idx) const {
    return arena_data + base + idx;
  }
  [[nodiscard]] std::size_t cell_idx(int dir, int l, int s) const {
    return (static_cast<std::size_t>(dir) * layers() + l) * steps() + s;
  }

  [[nodiscard]] const void* addr_h(int dir, int l, int s) const {
    if (ws != nullptr) return ws->tape(dir, l, s).h.data();
    return arena_at(h_base, cell_idx(dir, l, s));
  }
  [[nodiscard]] const void* addr_dh(int dir, int l, int s) const {
    if (ws != nullptr) return ws->dh(dir, l, s).data();
    return arena_at(dh_base, cell_idx(dir, l, s));
  }
  [[nodiscard]] const void* addr_dc(int dir, int l, int s) const {
    if (ws != nullptr) return ws->dc(dir, l, s).data();
    return arena_at(dc_base, cell_idx(dir, l, s));
  }
  [[nodiscard]] const void* addr_merged(int l, int t) const {
    if (ws != nullptr) return ws->merged(l, t).data();
    return arena_at(merged_base, static_cast<std::size_t>(l) * steps() + t);
  }
  [[nodiscard]] const void* addr_dmerged(int src_dir, int l, int t) const {
    if (ws != nullptr) return ws->dmerged(src_dir, l, t).data();
    return arena_at(dmerged_base,
                    (static_cast<std::size_t>(src_dir) * merged_layers() + l) *
                            steps() +
                        t);
  }
  [[nodiscard]] const void* addr_final() const {
    if (ws != nullptr) return ws->final_merged.data();
    return arena_at(final_base, 0);
  }
  [[nodiscard]] const void* addr_dfinal() const {
    if (ws != nullptr) return ws->dfinal.data();
    return arena_at(final_base, 1);
  }
  [[nodiscard]] const void* addr_probs(int t) const {
    if (ws != nullptr) return ws->probs(t).data();
    return arena_at(probs_base, static_cast<std::size_t>(t));
  }
  [[nodiscard]] const void* addr_dlogits(int t) const {
    if (ws != nullptr) return ws->dlogits(t).data();
    return arena_at(dlogits_base, static_cast<std::size_t>(t));
  }
  [[nodiscard]] const void* addr_x(int t) const {
    if (ws != nullptr) {
      // Row slice of the shared input buffer: address of this replica's
      // first element — distinct per replica.
    return prog.x_[static_cast<std::size_t>(t)].data() +
           static_cast<std::size_t>(r0) * cfg().input_size;
    }
    return arena_at(x_base, static_cast<std::size_t>(t));
  }
  [[nodiscard]] const void* addr_sink(int dir, int l) const {
    if (ws != nullptr) return ws->sink(dir, l).data();
    return arena_at(sink_base, static_cast<std::size_t>(dir) * layers() + l);
  }
  [[nodiscard]] const void* addr_dx(int src_dir, int t) const {
    if (ws != nullptr) return ws->dx(src_dir, t).data();
    return arena_at(dx_base, static_cast<std::size_t>(src_dir) * steps() + t);
  }
  /// Shared per-(dir, layer) weight-gradient buffer; dir == 2 → dense.
  [[nodiscard]] const void* addr_grads(int dir, int l) const {
    if (grads != nullptr) {
      if (dir == 2) return grads->dw_out.data();
      return grads->layers[dir][static_cast<std::size_t>(l)].dw.data();
    }
    return arena_at(grads_base, static_cast<std::size_t>(dir) * layers() + l);
  }
  [[nodiscard]] const void* addr_loss(int t) const {
    return &prog.losses_[static_cast<std::size_t>(rep) * outputs() + t];
  }

  // ---- executable-mode views ----
  [[nodiscard]] ConstMatrixView x_view(int t) const {
    return prog.x_[static_cast<std::size_t>(t)].cview().block(
        r0, 0, rb, cfg().input_size);
  }
  [[nodiscard]] ConstMatrixView layer_input(int l, int t) const {
    return l == 0 ? x_view(t) : ws->merged(l - 1, t).cview();
  }
  [[nodiscard]] std::span<const int> label_view(int t) const {
    const std::size_t offset =
        cfg().many_to_many
            ? static_cast<std::size_t>(t) * prog.total_batch_ + r0
            : static_cast<std::size_t>(r0);
    return std::span<const int>(prog.labels_)
        .subspan(offset, static_cast<std::size_t>(rb));
  }
};

// Sequence-wide input projection of layer 0 for one (replica, direction):
// a packed copy of this replica's input rows and its x·W_x^T image, built
// in time chunks by the input_precompute pass's ops.
struct TrainingProgram::PrecompBuf {
  tensor::Matrix xpack;  // (T*rb) x in_width
  tensor::Matrix proj;   // (T*rb) x gates*hidden
  std::vector<const void*> chunk_addrs;  // dependency address per chunk
  std::vector<int> chunk_begin;          // timestep begin per chunk + T
  int rb = 0;
  int cols = 0;  // gates * hidden
};

TrainingProgram::~TrainingProgram() = default;

void TrainingProgram::resolve_schedule() {
  const std::string& p = opts_.schedule_profile;
  if (p.empty() || p == "bpar") {
    // free-running B-Par schedule
  } else if (p == "fused_merge") {
    sched_.fuse_merge = true;
  } else if (p == "layer_barriers") {
    sched_.per_layer_barriers = true;
  } else if (p == "sequential") {
    sched_.sequential_directions = true;
  } else if (p == "framework") {
    sched_.per_layer_barriers = true;
    sched_.sequential_directions = true;
  } else {
    std::fprintf(stderr,
                 "[bpar] warning: unknown schedule_profile \"%s\"; "
                 "using \"bpar\"\n",
                 p.c_str());
  }
  if (opts_.per_layer_barriers || opts_.sequential_directions ||
      opts_.fuse_merge) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(
          stderr,
          "[bpar] warning: BuildOptions::{fuse_merge, per_layer_barriers, "
          "sequential_directions} are deprecated and will be removed; use "
          "schedule_profile = \"fused_merge\" / \"layer_barriers\" / "
          "\"sequential\" / \"framework\"\n");
    }
    sched_.per_layer_barriers |= opts_.per_layer_barriers;
    sched_.sequential_directions |= opts_.sequential_directions;
    sched_.fuse_merge |= opts_.fuse_merge;
  }
}

TrainingProgram::TrainingProgram(rnn::Network& net, int total_batch,
                                 BuildOptions opts)
    : net_(net), cfg_(net.config()), opts_(std::move(opts)),
      total_batch_(total_batch) {
  BPAR_SPAN("graph.build");
  if (opts_.seq_length_override > 0) {
    cfg_.seq_length = opts_.seq_length_override;
  }
  resolve_schedule();
  const NetworkConfig& cfg = cfg_;
  BPAR_CHECK(total_batch_ > 0, "total batch must be positive");
  BPAR_CHECK(opts_.num_replicas >= 1, "need >= 1 replica");
  BPAR_CHECK(opts_.num_replicas <= total_batch_,
             "more replicas than batch rows");
  BPAR_CHECK(opts_.intra_op_chunks >= 1, "bad intra_op_chunks");

  const int outputs = cfg.many_to_many ? cfg.seq_length : 1;
  losses_.assign(
      static_cast<std::size_t>(opts_.num_replicas) * outputs, 0.0);

  // Replica row ranges: remainder rows go to the first replicas.
  const int base = total_batch_ / opts_.num_replicas;
  const int extra = total_batch_ % opts_.num_replicas;
  int row = 0;
  for (int r = 0; r < opts_.num_replicas; ++r) {
    row_begin_.push_back(row);
    row += base + (r < extra ? 1 : 0);
  }
  row_begin_.push_back(total_batch_);  // sentinel

  if (opts_.executable) {
    x_.resize(static_cast<std::size_t>(cfg.seq_length));
    for (auto& m : x_) m.resize(total_batch_, cfg.input_size);
    const int label_count =
        cfg.many_to_many ? cfg.seq_length * total_batch_ : total_batch_;
    labels_.assign(static_cast<std::size_t>(label_count), 0);
    for (int r = 0; r < opts_.num_replicas; ++r) {
      const int rb = row_begin_[static_cast<std::size_t>(r + 1)] -
                     row_begin_[static_cast<std::size_t>(r)];
      replicas_.push_back(std::make_unique<rnn::Workspace>(
          cfg, rb, opts_.compute_input_grads));
    }
    if (opts_.training) {
      replica_grads_.resize(static_cast<std::size_t>(opts_.num_replicas));
      for (auto& g : replica_grads_) g.init_like(net_);
      master_grads_.init_like(net_);
    }
  }

  build();
  run_passes();
  lower();
  graph_.seal();
}

void TrainingProgram::load_batch(const rnn::BatchData& batch) {
  BPAR_CHECK(opts_.executable, "shape-only program cannot load data");
  const NetworkConfig& cfg = cfg_;
  batch.validate(cfg.input_size, cfg.seq_length);
  BPAR_CHECK(batch.batch() == total_batch_, "batch rows ", batch.batch(),
             " != program batch ", total_batch_);
  for (int t = 0; t < cfg.seq_length; ++t) {
    tensor::copy(batch.x[static_cast<std::size_t>(t)].cview(),
                 x_[static_cast<std::size_t>(t)].view());
  }
  BPAR_CHECK(batch.labels.size() == labels_.size(),
             "label layout mismatch (many-to-one vs many-to-many?)");
  labels_ = batch.labels;
}

void TrainingProgram::prepare() {
  total_loss_ = 0.0;
  std::fill(losses_.begin(), losses_.end(), 0.0);
  if (!opts_.executable) return;
  for (auto& ws : replicas_) ws->zero_backward();
  for (auto& g : replica_grads_) g.zero();
  if (opts_.training) master_grads_.zero();
}

void TrainingProgram::add_op(std::function<void()> fn,
                             std::vector<Access> accesses, TaskSpec spec,
                             bool chunkable, int gemms) {
  passes::Op op;
  op.fn = std::move(fn);
  op.accesses = std::move(accesses);
  op.spec = std::move(spec);
  op.chunkable = chunkable;
  op.gemms = gemms;
  ops_.push_back(std::move(op));
}

void TrainingProgram::add_cell_op(std::vector<Access> accesses, TaskSpec spec,
                                  passes::CellInfo cell) {
  passes::Op op;
  op.accesses = std::move(accesses);
  op.spec = std::move(spec);
  op.chunkable = true;
  op.gemms = passes::cell_forward_gemms(cell.lstm, false, false);
  op.cell = std::move(cell);
  ops_.push_back(std::move(op));
}

std::function<void()> TrainingProgram::make_cell_fn(passes::CellInfo ci) {
  return [this, ci] {
    const NetworkConfig& c = cfg_;
    rnn::Workspace* ws = ci.ws;
    ConstMatrixView x{};
    if (!ci.precomputed) {
      x = ci.layer == 0
              ? x_[static_cast<std::size_t>(ci.ti)].cview().block(
                    ci.r0, 0, ci.rb, c.input_size)
              : ws->merged(ci.layer - 1, ci.ti).cview();
    }
    ConstMatrixView h_prev =
        ci.step == 0 ? ws->zero_state.cview()
                     : ws->tape(ci.dir, ci.layer, ci.step - 1).h.cview();
    ConstMatrixView c_prev;
    if (ci.lstm) {
      c_prev = ci.step == 0
                   ? ws->zero_state.cview()
                   : ws->tape(ci.dir, ci.layer, ci.step - 1).c.cview();
    }
    rnn::CellForwardOpts fo;
    fo.fuse_gates = ci.fuse_gates;
    if (ci.precomputed) {
      fo.precomp = ConstMatrixView{ci.precomp_row0, ci.rb, ci.precomp_cols,
                                   ci.precomp_cols};
    }
    rnn::cell_forward_ex(*ci.params, ci.qw, x, h_prev, c_prev,
                         ws->tape(ci.dir, ci.layer, ci.step).views(), fo);
    if (ci.fused_merge) {
      rnn::merge_forward(
          c.merge, ws->tape(0, ci.layer, ci.step).h.cview(),
          ws->tape(1, ci.layer, ci.steps - 1 - ci.step).h.cview(),
          ws->merged(ci.layer, ci.step).view());
    }
  };
}

void TrainingProgram::run_passes() {
  pass_report_ = {};
  const passes::PassPipeline pipe = passes::make_pipeline(opts_.passes);
  pass_report_.signature = pipe.signature();
  if (pipe.empty()) return;
  BPAR_SPAN("graph.passes");
  passes::PassContext ctx{
      *this,
      opts_.executable,
      opts_.training,
      opts_.executable && !opts_.training && opts_.quantized != nullptr,
      opts_.dispatch_ns == 0 ? 300 : opts_.dispatch_ns,
      &pass_report_,
      {}};
  pipe.run(ops_, ctx);
}

void TrainingProgram::lower() {
  BPAR_SPAN("graph.lower");
  for (passes::Op& op : ops_) {
    if (op.dead) continue;
    gemm_launches_ += static_cast<std::size_t>(op.gemms);
    std::function<void()> fn = std::move(op.fn);
    if (op.cell.has_value() && opts_.executable) {
      fn = make_cell_fn(*op.cell);
    }
    lower_one(std::move(fn), op.accesses, std::move(op.spec), op.chunkable);
  }
  ops_.clear();
  ops_.shrink_to_fit();
}

void TrainingProgram::lower_one(std::function<void()> fn,
                                std::vector<Access>& accesses, TaskSpec spec,
                                bool chunkable) {
  if (!opts_.executable && !fn) fn = [] {};
  if (!chunkable || opts_.intra_op_chunks <= 1 || opts_.executable) {
    graph_.add(std::move(fn),
               std::span<const Access>(accesses.data(), accesses.size()),
               std::move(spec));
    return;
  }
  // Shape-only intra-op emulation: N chunk tasks reading the cell's inputs,
  // then a join task carrying the cell's writes. Models a framework that
  // splits each cell's GEMMs across cores inside a fork-join region.
  const int n = opts_.intra_op_chunks;
  std::vector<Access> chunk_in;
  std::vector<Access> join_acc;
  for (const Access& a : accesses) {
    if (a.mode == taskrt::AccessMode::kIn) chunk_in.push_back(a);
    join_acc.push_back(a);
  }
  std::vector<const void*> chunk_tokens;
  for (int i = 0; i < n; ++i) {
    TaskSpec chunk_spec = spec;
    chunk_spec.kind = TaskKind::kGemmChunk;
    chunk_spec.flops = spec.flops / n;
    chunk_spec.working_set_bytes = spec.working_set_bytes / n;
    std::vector<Access> acc = chunk_in;
    const void* token = fresh_token();
    chunk_tokens.push_back(token);
    acc.push_back(out(token));
    graph_.add([] {}, std::span<const Access>(acc.data(), acc.size()),
               std::move(chunk_spec));
  }
  TaskSpec join_spec = std::move(spec);
  join_spec.flops = 0.0;
  join_spec.working_set_bytes = 0;
  join_spec.cost_hint_ns = 500;
  for (const void* token : chunk_tokens) join_acc.push_back(in(token));
  graph_.add([] {},
             std::span<const Access>(join_acc.data(), join_acc.size()),
             std::move(join_spec));
}

// ---- pass hooks ----

passes::OpList TrainingProgram::make_precompute_ops(int rep, int dir,
                                                    int chunks) {
  const NetworkConfig& cfg = cfg_;
  const int steps = cfg.seq_length;
  const int rb = row_begin_[static_cast<std::size_t>(rep + 1)] -
                 row_begin_[static_cast<std::size_t>(rep)];
  const int r0 = row_begin_[static_cast<std::size_t>(rep)];
  const int in_width = cfg.input_size;
  const int gcols = rnn::gate_count(cfg.cell) * cfg.hidden_size;
  const std::size_t key = static_cast<std::size_t>(rep) * 2 + dir;
  if (precomp_.size() < static_cast<std::size_t>(opts_.num_replicas) * 2) {
    precomp_.resize(static_cast<std::size_t>(opts_.num_replicas) * 2);
  }
  if (precomp_[key] != nullptr) return {};
  chunks = std::clamp(chunks, 1, steps);

  auto buf = std::make_unique<PrecompBuf>();
  buf->rb = rb;
  buf->cols = gcols;
  if (opts_.executable) {
    buf->xpack.resize(steps * rb, in_width);
    buf->proj.resize(steps * rb, gcols);
  }
  const int tbase = steps / chunks;
  const int textra = steps % chunks;
  int tcur = 0;
  for (int c = 0; c < chunks; ++c) {
    buf->chunk_begin.push_back(tcur);
    tcur += tbase + (c < textra ? 1 : 0);
  }
  buf->chunk_begin.push_back(steps);

  const rnn::LayerParams* params =
      opts_.executable ? &net_.layer(dir, 0) : nullptr;
  const kernels::QuantizedMatrix* qw =
      (opts_.executable && !opts_.training && opts_.quantized != nullptr)
          ? &opts_.quantized->layer(dir, 0)
          : nullptr;

  passes::OpList ops;
  for (int c = 0; c < chunks; ++c) {
    const int t0 = buf->chunk_begin[static_cast<std::size_t>(c)];
    const int t1 = buf->chunk_begin[static_cast<std::size_t>(c + 1)];
    const void* addr =
        opts_.executable
            ? static_cast<const void*>(
                  buf->proj.data() +
                  static_cast<std::size_t>(t0) * rb * gcols)
            : fresh_token();
    buf->chunk_addrs.push_back(addr);

    passes::Op op;
    op.spec.kind = TaskKind::kInputPrecompute;
    op.spec.name = std::string("x") + (dir == 0 ? "f" : "r") + "0.c" +
                   std::to_string(c);
    op.spec.layer = 0;
    op.spec.step = t0;
    op.spec.replica = rep;
    op.spec.flops = 2.0 * (t1 - t0) * rb * in_width *
                    static_cast<double>(gcols);
    op.spec.working_set_bytes =
        (static_cast<std::size_t>(t1 - t0) * rb * (in_width + gcols) +
         static_cast<std::size_t>(in_width) * gcols) *
        sizeof(float);
    op.gemms = 1;
    for (int t = t0; t < t1; ++t) {
      op.accesses.push_back(in(
          opts_.executable
              ? static_cast<const void*>(
                    x_[static_cast<std::size_t>(t)].data() +
                    static_cast<std::size_t>(r0) * in_width)
              : static_cast<const void*>(
                    arenas_[static_cast<std::size_t>(rep)].data() +
                    x_bases_[static_cast<std::size_t>(rep)] + t)));
    }
    op.accesses.push_back(out(addr));
    if (opts_.executable) {
      PrecompBuf* b = buf.get();
      op.fn = [this, b, params, qw, t0, t1, rb, r0, in_width] {
        BPAR_SPAN("graph.input_precompute");
        for (int t = t0; t < t1; ++t) {
          tensor::copy(
              x_[static_cast<std::size_t>(t)].cview().block(r0, 0, rb,
                                                            in_width),
              b->xpack.view().block(t * rb, 0, rb, in_width));
        }
        const ConstMatrixView xv =
            b->xpack.cview().block(t0 * rb, 0, (t1 - t0) * rb, in_width);
        MatrixView pv =
            b->proj.view().block(t0 * rb, 0, (t1 - t0) * rb, b->cols);
        if (qw != nullptr) {
          kernels::qgemm_nt(xv, qw->view().block(0, 0, qw->rows(), in_width),
                            pv);
        } else {
          kernels::gemm_nt(xv, params->w_input(), pv);
        }
      };
    }
    ops.push_back(std::move(op));
  }
  precomp_[key] = std::move(buf);
  return ops;
}

const void* TrainingProgram::precompute_chunk_addr(int rep, int dir,
                                                   int ti) const {
  const auto& buf = precomp_[static_cast<std::size_t>(rep) * 2 + dir];
  BPAR_CHECK(buf != nullptr, "precompute buffers not built");
  for (std::size_t c = 0; c + 1 < buf->chunk_begin.size(); ++c) {
    if (ti < buf->chunk_begin[c + 1]) return buf->chunk_addrs[c];
  }
  BPAR_CHECK(false, "timestep ", ti, " outside precompute chunks");
  return nullptr;
}

const float* TrainingProgram::precompute_row(int rep, int dir, int ti) const {
  const auto& buf = precomp_[static_cast<std::size_t>(rep) * 2 + dir];
  if (buf == nullptr || !opts_.executable) return nullptr;
  return buf->proj.data() +
         static_cast<std::size_t>(ti) * buf->rb * buf->cols;
}

int TrainingProgram::precompute_cols(int rep, int dir) const {
  const auto& buf = precomp_[static_cast<std::size_t>(rep) * 2 + dir];
  return buf == nullptr ? 0 : buf->cols;
}

// ---- graph construction (intermediate op form) ----

void TrainingProgram::build() {
  for (int rep = 0; rep < opts_.num_replicas; ++rep) build_replica(rep);
  build_reduction();
}

void TrainingProgram::build_replica(int rep) {
  const NetworkConfig& cfg = cfg_;
  ReplicaCtx ctx{*this,
                 rep,
                 row_begin_[static_cast<std::size_t>(rep)],
                 row_begin_[static_cast<std::size_t>(rep + 1)] -
                     row_begin_[static_cast<std::size_t>(rep)]};
  if (opts_.executable) {
    ctx.ws = replicas_[static_cast<std::size_t>(rep)].get();
    if (opts_.training) {
      ctx.grads = &replica_grads_[static_cast<std::size_t>(rep)];
    }
  } else {
    // Lay out the synthetic arena: one byte per logical buffer.
    const auto layers = static_cast<std::size_t>(cfg.num_layers);
    const auto steps = static_cast<std::size_t>(cfg.seq_length);
    const std::size_t cells = 2 * layers * steps;
    const std::size_t merged =
        static_cast<std::size_t>(ctx.merged_layers()) * steps;
    const auto outputs = static_cast<std::size_t>(ctx.outputs());
    std::size_t off = 0;
    ctx.h_base = off;
    off += cells;
    ctx.dh_base = off;
    off += cells;
    ctx.dc_base = off;
    off += cells;
    ctx.merged_base = off;
    off += merged;
    ctx.dmerged_base = off;
    off += 2 * merged;
    ctx.probs_base = off;
    off += outputs;
    ctx.dlogits_base = off;
    off += outputs;
    ctx.x_base = off;
    off += steps;
    ctx.sink_base = off;
    off += 2 * layers;
    ctx.grads_base = off;
    off += 3 * layers;  // dir 0, dir 1, dense (dir==2 uses slot l==0)
    ctx.final_base = off;
    off += 2;
    ctx.dx_base = off;
    off += 2 * steps;
    arenas_.emplace_back(off, 0);
    ctx.arena_data = arenas_.back().data();
    grads_bases_.push_back(ctx.grads_base);
    x_bases_.push_back(ctx.x_base);
  }

  // Fresh forward-barrier tokens for this replica (framework emulation).
  fwd_tokens_.clear();
  for (int l = 0; l < cfg.num_layers; ++l) fwd_tokens_.push_back(fresh_token());

  for (int l = 0; l < cfg.num_layers; ++l) build_forward_layer(ctx, l);
  build_loss_and_dense(ctx);
  if (opts_.training) {
    build_dense_backward(ctx);
    for (int l = cfg.num_layers - 1; l >= 0; --l) {
      build_backward_layer(ctx, l);
    }
  }
}

void TrainingProgram::build_forward_layer(ReplicaCtx& ctx, int l) {
  const NetworkConfig& cfg = cfg_;
  const int steps = cfg.seq_length;
  const bool lstm = cfg.cell == CellType::kLstm;
  const int in_width = cfg.layer_input_size(l);
  const double cell_flops =
      rnn::cell_forward_flops(cfg.cell, ctx.rb, in_width, cfg.hidden_size);
  const std::size_t cell_ws = rnn::cell_working_set_bytes(
      cfg.cell, ctx.rb, in_width, cfg.hidden_size);

  auto cell_spec = [&](int dir, int t) {
    TaskSpec spec;
    spec.kind = TaskKind::kCellForward;
    spec.flops = cell_flops;
    spec.working_set_bytes = cell_ws;
    spec.layer = l;
    spec.step = t;
    spec.replica = ctx.rep;
    spec.name = std::string(dir == 0 ? "f" : "r") + std::to_string(l) + "." +
                std::to_string(t);
    return spec;
  };

  auto fwd_barrier_in = [&](std::vector<Access>& acc) {
    if (sched_.per_layer_barriers && l > 0) {
      acc.push_back(in(fwd_tokens_[static_cast<std::size_t>(l - 1)]));
    }
  };

  // One lambda per direction to emit the cell chain.
  auto emit_cells = [&](int dir) {
    const rnn::LayerParams* params =
        opts_.executable ? &net_.layer(dir, l) : nullptr;
    // int8 path: inference graphs only — training reads fp32 weights.
    const kernels::QuantizedMatrix* qw =
        (opts_.executable && !opts_.training && opts_.quantized != nullptr)
            ? &opts_.quantized->layer(dir, l)
            : nullptr;
    for (int s = 0; s < steps; ++s) {
      // Input index this processing step consumes.
      const int ti = dir == 0 ? s : steps - 1 - s;
      std::vector<Access> acc;
      if (s > 0) acc.push_back(in(ctx.addr_h(dir, l, s - 1)));
      acc.push_back(in(l == 0 ? ctx.addr_x(ti) : ctx.addr_merged(l - 1, ti)));
      fwd_barrier_in(acc);
      if (sched_.sequential_directions && dir == 1 && s == 0) {
        // Framework emulation: the reverse sweep starts only after the
        // forward sweep of the same layer finished.
        acc.push_back(in(ctx.addr_h(0, l, steps - 1)));
      }
      const bool fused_merge = sched_.fuse_merge && dir == 0 &&
                               l < ctx.merged_layers();
      if (fused_merge) {
        // Ablation: the forward cell also computes merge(l, t) and thus
        // depends on the reverse cell — the coupling B-Par avoids.
        acc.push_back(in(ctx.addr_h(1, l, steps - 1 - s)));
        acc.push_back(out(ctx.addr_merged(l, s)));
      }
      acc.push_back(out(ctx.addr_h(dir, l, s)));

      passes::CellInfo ci;
      ci.ws = ctx.ws;
      ci.params = params;
      ci.qw = qw;
      ci.rep = ctx.rep;
      ci.dir = dir;
      ci.layer = l;
      ci.step = s;
      ci.ti = ti;
      ci.r0 = ctx.r0;
      ci.rb = ctx.rb;
      ci.steps = steps;
      ci.in_width = in_width;
      ci.hidden = cfg.hidden_size;
      ci.gates = rnn::gate_count(cfg.cell);
      ci.lstm = lstm;
      ci.fused_merge = fused_merge;

      TaskSpec spec = cell_spec(dir, s);
      if (fused_merge) {
        spec.flops += rnn::merge_flops(cfg.merge, ctx.rb, cfg.hidden_size);
      }
      add_cell_op(std::move(acc), std::move(spec), std::move(ci));
    }
  };

  if (sched_.fuse_merge) {
    emit_cells(1);  // reverse first: fused forward cells read reverse h
    emit_cells(0);
  } else {
    emit_cells(0);
    emit_cells(1);
  }

  // Merge tasks of this layer (kept separate — the core B-Par idea).
  if (l < ctx.merged_layers() && !sched_.fuse_merge) {
    rnn::Workspace* ws = ctx.ws;
    for (int t = 0; t < steps; ++t) {
      std::vector<Access> acc{in(ctx.addr_h(0, l, t)),
                              in(ctx.addr_h(1, l, steps - 1 - t)),
                              out(ctx.addr_merged(l, t))};
      std::function<void()> fn;
      if (opts_.executable) {
        fn = [this, ws, l, t, steps] {
          rnn::merge_forward(cfg_.merge, ws->tape(0, l, t).h.cview(),
                             ws->tape(1, l, steps - 1 - t).h.cview(),
                             ws->merged(l, t).view());
        };
      }
      TaskSpec spec;
      spec.kind = TaskKind::kMerge;
      spec.flops = rnn::merge_flops(cfg.merge, ctx.rb, cfg.hidden_size);
      spec.working_set_bytes =
          rnn::merge_working_set_bytes(cfg.merge, ctx.rb, cfg.hidden_size);
      spec.layer = l;
      spec.step = t;
      spec.replica = ctx.rep;
      spec.name = "m" + std::to_string(l) + "." + std::to_string(t);
      add_op(std::move(fn), std::move(acc), std::move(spec), false);
    }
  }

  // Per-layer barrier (framework emulation): gate the next layer on every
  // merged output of this one.
  if (sched_.per_layer_barriers && l < ctx.merged_layers()) {
    std::vector<Access> acc;
    for (int t = 0; t < steps; ++t) acc.push_back(in(ctx.addr_merged(l, t)));
    acc.push_back(out(fwd_tokens_[static_cast<std::size_t>(l)]));
    TaskSpec spec;
    spec.kind = TaskKind::kBarrier;
    spec.cost_hint_ns = 1000;
    spec.layer = l;
    spec.replica = ctx.rep;
    add_op({}, std::move(acc), std::move(spec), false);
  }
}

void TrainingProgram::build_loss_and_dense(ReplicaCtx& ctx) {
  const NetworkConfig& cfg = cfg_;
  const int steps = cfg.seq_length;
  const int last = cfg.num_layers - 1;
  rnn::Workspace* ws = ctx.ws;

  // Many-to-one: single final merge of the two last cells (9f with 9r).
  if (!cfg.many_to_many) {
    std::vector<Access> acc{in(ctx.addr_h(0, last, steps - 1)),
                            in(ctx.addr_h(1, last, steps - 1)),
                            out(ctx.addr_final())};
    std::function<void()> fn;
    if (opts_.executable) {
      fn = [this, ws, last, steps] {
        rnn::merge_forward(cfg_.merge,
                           ws->tape(0, last, steps - 1).h.cview(),
                           ws->tape(1, last, steps - 1).h.cview(),
                           ws->final_merged.view());
      };
    }
    TaskSpec spec;
    spec.kind = TaskKind::kMerge;
    spec.flops = rnn::merge_flops(cfg.merge, ctx.rb, cfg.hidden_size);
    spec.working_set_bytes =
        rnn::merge_working_set_bytes(cfg.merge, ctx.rb, cfg.hidden_size);
    spec.layer = last;
    spec.replica = ctx.rep;
    spec.name = "final_merge";
    add_op(std::move(fn), std::move(acc), std::move(spec), false);
  }

  const double weight =
      static_cast<double>(ctx.rb) /
      (static_cast<double>(total_batch_) * ctx.outputs());
  for (int t = 0; t < ctx.outputs(); ++t) {
    const void* y_addr =
        cfg.many_to_many ? ctx.addr_merged(last, t) : ctx.addr_final();
    std::vector<Access> acc{in(y_addr), out(ctx.addr_probs(t)),
                            out(ctx.addr_loss(t))};
    std::function<void()> fn;
    if (opts_.executable) {
      const kernels::QuantizedMatrix* q_out =
          (!opts_.training && opts_.quantized != nullptr)
              ? &opts_.quantized->w_out()
              : nullptr;
      fn = [this, ws, t, weight, &losses = losses_, rep = ctx.rep,
            outputs = ctx.outputs(), m2m = cfg.many_to_many, last,
            r0 = ctx.r0, rb = ctx.rb, q_out] {
        ConstMatrixView y =
            m2m ? ws->merged(last, t).cview() : ws->final_merged.cview();
        MatrixView logits = ws->logits(t).view();
        if (q_out != nullptr) {
          kernels::qgemm_nt(y, q_out->view(), logits);
        } else {
          kernels::gemm_nt(y, net_.w_out.cview(), logits);
        }
        kernels::add_bias_rows(logits, net_.b_out.cview().row(0));
        kernels::softmax_rows(logits, ws->probs(t).view());
        const std::size_t offset =
            m2m ? static_cast<std::size_t>(t) * total_batch_ + r0
                : static_cast<std::size_t>(r0);
        const auto lbl = std::span<const int>(labels_).subspan(
            offset, static_cast<std::size_t>(rb));
        losses[static_cast<std::size_t>(rep) * outputs + t] =
            kernels::cross_entropy(ws->probs(t).cview(), lbl) * weight;
      };
    }
    TaskSpec spec;
    spec.kind = TaskKind::kLoss;
    spec.flops = rnn::dense_forward_flops(ctx.rb, cfg.merged_size(),
                                          cfg.num_classes);
    spec.working_set_bytes =
        static_cast<std::size_t>(cfg.num_classes) *
        (cfg.merged_size() + 2U * ctx.rb) * sizeof(float);
    spec.step = t;
    spec.replica = ctx.rep;
    spec.name = "dense_fwd." + std::to_string(t);
    add_op(std::move(fn), std::move(acc), std::move(spec), false, 1);
  }
}

void TrainingProgram::build_dense_backward(ReplicaCtx& ctx) {
  const NetworkConfig& cfg = cfg_;
  const int last = cfg.num_layers - 1;
  const int steps = cfg.seq_length;
  rnn::Workspace* ws = ctx.ws;
  rnn::NetworkGrads* grads = ctx.grads;
  const float scale = static_cast<float>(
      static_cast<double>(ctx.rb) /
      (static_cast<double>(total_batch_) * ctx.outputs()));

  for (int t = 0; t < ctx.outputs(); ++t) {
    // Loss gradient: softmax_ce_grad yields (p - onehot)/rb; scaling by
    // rb/(B*outputs) turns it into the whole-batch mean gradient.
    {
      std::vector<Access> acc{in(ctx.addr_probs(t)),
                              out(ctx.addr_dlogits(t))};
      std::function<void()> fn;
      if (opts_.executable) {
        fn = [this, ws, t, scale, m2m = cfg.many_to_many, r0 = ctx.r0,
              rb = ctx.rb] {
          const std::size_t offset =
              m2m ? static_cast<std::size_t>(t) * total_batch_ + r0
                  : static_cast<std::size_t>(r0);
          const auto lbl = std::span<const int>(labels_).subspan(
              offset, static_cast<std::size_t>(rb));
          MatrixView dl = ws->dlogits(t).view();
          kernels::softmax_ce_grad(ws->probs(t).cview(), lbl, dl);
          for (int r = 0; r < dl.rows; ++r) {
            kernels::scale_inplace(dl.row(r), scale);
          }
        };
      }
      TaskSpec spec;
      spec.kind = TaskKind::kLoss;
      spec.flops = 3.0 * ctx.rb * cfg.num_classes;
      spec.step = t;
      spec.replica = ctx.rep;
      spec.name = "loss_grad." + std::to_string(t);
      add_op(std::move(fn), std::move(acc), std::move(spec), false);
    }
    // Dense backward: dw_out += dlogits^T y; dy += dlogits * W.
    {
      const void* y_addr =
          cfg.many_to_many ? ctx.addr_merged(last, t) : ctx.addr_final();
      const void* dy_addr = cfg.many_to_many ? ctx.addr_dmerged(0, last, t)
                                             : ctx.addr_dfinal();
      std::vector<Access> acc{in(ctx.addr_dlogits(t)), in(y_addr),
                              inout(ctx.addr_grads(2, 0)), out(dy_addr)};
      std::function<void()> fn;
      if (opts_.executable) {
        fn = [this, ws, grads, t, m2m = cfg.many_to_many, last] {
          ConstMatrixView y =
              m2m ? ws->merged(last, t).cview() : ws->final_merged.cview();
          MatrixView dy = m2m ? ws->dmerged(0, last, t).view()
                              : ws->dfinal.view();
          const ConstMatrixView dl = ws->dlogits(t).cview();
          kernels::gemm_tn(dl, y, grads->dw_out.view(), 1.0F, 1.0F);
          kernels::sum_rows_acc(dl, grads->db_out.view().row(0));
          kernels::gemm_nn(dl, net_.w_out.cview(), dy, 1.0F, 1.0F);
        };
      }
      TaskSpec spec;
      spec.kind = TaskKind::kCellBackward;
      spec.flops = rnn::dense_backward_flops(ctx.rb, cfg.merged_size(),
                                             cfg.num_classes);
      spec.working_set_bytes =
          static_cast<std::size_t>(cfg.num_classes) *
          (cfg.merged_size() + 2U * ctx.rb) * sizeof(float);
      spec.step = t;
      spec.replica = ctx.rep;
      spec.name = "dense_bwd." + std::to_string(t);
      add_op(std::move(fn), std::move(acc), std::move(spec), false, 2);
    }
  }

  // Many-to-one: backward of the final merge seeds the last layer's dh.
  if (!cfg.many_to_many) {
    std::vector<Access> acc{in(ctx.addr_dfinal()),
                            in(ctx.addr_h(0, last, steps - 1)),
                            in(ctx.addr_h(1, last, steps - 1)),
                            inout(ctx.addr_dh(0, last, steps - 1)),
                            inout(ctx.addr_dh(1, last, steps - 1))};
    std::function<void()> fn;
    if (opts_.executable) {
      fn = [this, ws, last, steps] {
        rnn::merge_backward(cfg_.merge,
                            ws->tape(0, last, steps - 1).h.cview(),
                            ws->tape(1, last, steps - 1).h.cview(),
                            ws->dfinal.cview(),
                            ws->dh(0, last, steps - 1).view(),
                            ws->dh(1, last, steps - 1).view());
      };
    }
    TaskSpec spec;
    spec.kind = TaskKind::kMergeBackward;
    spec.flops = rnn::merge_flops(cfg.merge, ctx.rb, cfg.hidden_size);
    spec.layer = last;
    spec.replica = ctx.rep;
    spec.name = "final_merge_bwd";
    add_op(std::move(fn), std::move(acc), std::move(spec), false);
  }
}

void TrainingProgram::build_backward_layer(ReplicaCtx& ctx, int l) {
  const NetworkConfig& cfg = cfg_;
  const int steps = cfg.seq_length;
  const bool lstm = cfg.cell == CellType::kLstm;
  rnn::Workspace* ws = ctx.ws;
  rnn::NetworkGrads* grads = ctx.grads;
  const int in_width = cfg.layer_input_size(l);
  const double bwd_flops =
      rnn::cell_backward_flops(cfg.cell, ctx.rb, in_width, cfg.hidden_size);
  const std::size_t cell_ws = rnn::cell_working_set_bytes(
      cfg.cell, ctx.rb, in_width, cfg.hidden_size);

  // Backward per-layer barrier (framework emulation): the merge-backward
  // tasks of layer l wait until layer l+1's backward fully drained.
  const void* bwd_token = nullptr;
  if (sched_.per_layer_barriers && l < ctx.merged_layers()) {
    std::vector<Access> acc;
    for (int t = 0; t < steps; ++t) {
      acc.push_back(in(ctx.addr_dmerged(0, l, t)));
      acc.push_back(in(ctx.addr_dmerged(1, l, t)));
    }
    bwd_token = fresh_token();
    acc.push_back(out(bwd_token));
    TaskSpec spec;
    spec.kind = TaskKind::kBarrier;
    spec.cost_hint_ns = 1000;
    spec.layer = l;
    spec.replica = ctx.rep;
    add_op({}, std::move(acc), std::move(spec), false);
  }

  // Merge backward tasks: both directions' dmerged halves → dh of both
  // directions.
  if (l < ctx.merged_layers() && !sched_.fuse_merge) {
    for (int t = steps - 1; t >= 0; --t) {
      std::vector<Access> acc{in(ctx.addr_dmerged(0, l, t)),
                              in(ctx.addr_dmerged(1, l, t)),
                              in(ctx.addr_h(0, l, t)),
                              in(ctx.addr_h(1, l, steps - 1 - t)),
                              inout(ctx.addr_dh(0, l, t)),
                              inout(ctx.addr_dh(1, l, steps - 1 - t))};
      if (bwd_token != nullptr) acc.push_back(in(bwd_token));
      std::function<void()> fn;
      if (opts_.executable) {
        fn = [this, ws, l, t, steps] {
          for (int src = 0; src < 2; ++src) {
            rnn::merge_backward(cfg_.merge,
                                ws->tape(0, l, t).h.cview(),
                                ws->tape(1, l, steps - 1 - t).h.cview(),
                                ws->dmerged(src, l, t).cview(),
                                ws->dh(0, l, t).view(),
                                ws->dh(1, l, steps - 1 - t).view());
          }
        };
      }
      TaskSpec spec;
      spec.kind = TaskKind::kMergeBackward;
      spec.flops = rnn::merge_flops(cfg.merge, ctx.rb, cfg.hidden_size);
      spec.working_set_bytes =
          rnn::merge_working_set_bytes(cfg.merge, ctx.rb, cfg.hidden_size);
      spec.layer = l;
      spec.step = t;
      spec.replica = ctx.rep;
      spec.name = "mb" + std::to_string(l) + "." + std::to_string(t);
      add_op(std::move(fn), std::move(acc), std::move(spec), false);
    }
  }

  // Cell backward chains, most recent timestep first. Forward direction
  // before reverse so fused merge-backward (ablation) has its writers
  // created first.
  auto emit_bwd = [&](int dir) {
    const rnn::LayerParams* params =
        opts_.executable ? &net_.layer(dir, l) : nullptr;
    const bool input_grads = l > 0 || opts_.compute_input_grads;
    const int gemms = (lstm ? 3 : 6) + (input_grads ? (lstm ? 1 : 2) : 0);
    for (int s = steps - 1; s >= 0; --s) {
      const int ti = dir == 0 ? s : steps - 1 - s;
      const bool fused_merge = sched_.fuse_merge && dir == 0 &&
                               l < ctx.merged_layers();
      std::vector<Access> acc;
      // The fused-merge ablation also *writes* this dh (merge backward
      // accumulates into it before the cell consumes it).
      acc.push_back(fused_merge ? inout(ctx.addr_dh(dir, l, s))
                                : in(ctx.addr_dh(dir, l, s)));
      if (fused_merge) {
        acc.push_back(in(ctx.addr_dmerged(0, l, s)));
        acc.push_back(in(ctx.addr_dmerged(1, l, s)));
        acc.push_back(inout(ctx.addr_dh(1, l, steps - 1 - s)));
      }
      if (lstm && s < steps - 1) acc.push_back(in(ctx.addr_dc(dir, l, s)));
      acc.push_back(in(ctx.addr_h(dir, l, s)));  // forward tape dependency
      acc.push_back(
          in(l == 0 ? ctx.addr_x(ti) : ctx.addr_merged(l - 1, ti)));
      acc.push_back(inout(ctx.addr_grads(dir, l)));
      if (l > 0) {
        acc.push_back(inout(ctx.addr_dmerged(dir, l - 1, ti)));
      } else if (opts_.compute_input_grads) {
        acc.push_back(inout(ctx.addr_dx(dir, ti)));
      }
      if (s > 0) {
        acc.push_back(inout(ctx.addr_dh(dir, l, s - 1)));
        if (lstm) acc.push_back(out(ctx.addr_dc(dir, l, s - 1)));
      } else {
        acc.push_back(out(ctx.addr_sink(dir, l)));
      }

      std::function<void()> fn;
      if (opts_.executable) {
        fn = [this, ws, grads, params, dir, l, s, ti, lstm, fused_merge,
              steps, r0 = ctx.r0, rb = ctx.rb] {
          const NetworkConfig& c = cfg_;
          if (fused_merge) {
            for (int src = 0; src < 2; ++src) {
              rnn::merge_backward(c.merge, ws->tape(0, l, s).h.cview(),
                                  ws->tape(1, l, steps - 1 - s).h.cview(),
                                  ws->dmerged(src, l, s).cview(),
                                  ws->dh(0, l, s).view(),
                                  ws->dh(1, l, steps - 1 - s).view());
            }
          }
          ConstMatrixView x =
              l == 0 ? x_[static_cast<std::size_t>(ti)].cview().block(
                           r0, 0, rb, c.input_size)
                     : ws->merged(l - 1, ti).cview();
          ConstMatrixView h_prev = s == 0
                                       ? ws->zero_state.cview()
                                       : ws->tape(dir, l, s - 1).h.cview();
          ConstMatrixView c_prev;
          if (lstm) {
            c_prev = s == 0 ? ws->zero_state.cview()
                            : ws->tape(dir, l, s - 1).c.cview();
          }
          ConstMatrixView dc_in;
          if (lstm && s < steps - 1) dc_in = ws->dc(dir, l, s).cview();
          MatrixView dx_acc;
          if (l > 0) {
            dx_acc = ws->dmerged(dir, l - 1, ti).view();
          } else if (ws->has_input_grads()) {
            dx_acc = ws->dx(dir, ti).view();
          }
          MatrixView dh_prev = s > 0 ? ws->dh(dir, l, s - 1).view()
                                     : ws->sink(dir, l).view();
          MatrixView dc_prev;
          if (lstm) {
            dc_prev = s > 0 ? ws->dc(dir, l, s - 1).view()
                            : ws->sink(dir, l).view();
          }
          rnn::cell_backward(*params, x, h_prev, c_prev, ws->tape(dir, l, s),
                             ws->dh(dir, l, s).cview(), dc_in, dx_acc,
                             dh_prev, dc_prev,
                             grads->layers[dir][static_cast<std::size_t>(l)]);
        };
      }
      TaskSpec spec;
      spec.kind = TaskKind::kCellBackward;
      spec.flops = bwd_flops;
      if (fused_merge) {
        spec.flops += rnn::merge_flops(cfg.merge, ctx.rb, cfg.hidden_size);
      }
      spec.working_set_bytes = cell_ws;
      spec.layer = l;
      spec.step = s;
      spec.replica = ctx.rep;
      spec.name = std::string(dir == 0 ? "bf" : "br") + std::to_string(l) +
                  "." + std::to_string(s);
      add_op(std::move(fn), std::move(acc), std::move(spec), true, gemms);
    }
  };
  emit_bwd(0);
  emit_bwd(1);
}

void TrainingProgram::build_reduction() {
  const NetworkConfig& cfg = cfg_;

  // Loss reduction — built for training AND inference graphs.
  {
    std::vector<Access> acc;
    for (const double& slot : losses_) acc.push_back(in(&slot));
    acc.push_back(out(&total_loss_));
    std::function<void()> fn;
    if (opts_.executable) {
      fn = [this] {
        total_loss_ = 0.0;
        for (const double v : losses_) total_loss_ += v;
      };
    }
    TaskSpec spec;
    spec.kind = TaskKind::kLoss;
    spec.name = "reduce.loss";
    add_op(std::move(fn), std::move(acc), std::move(spec), false);
  }
  if (!opts_.training) return;

  // Shape-mode master-gradient addresses.
  const void* master_dense = opts_.executable
                                 ? static_cast<const void*>(master_grads_.dw_out.data())
                                 : fresh_token();
  std::vector<const void*> master_layer(
      static_cast<std::size_t>(2 * cfg.num_layers));
  for (int dir = 0; dir < 2; ++dir) {
    for (int l = 0; l < cfg.num_layers; ++l) {
      master_layer[static_cast<std::size_t>(dir * cfg.num_layers + l)] =
          opts_.executable
              ? static_cast<const void*>(
                    master_grads_.layers[dir][static_cast<std::size_t>(l)]
                        .dw.data())
              : fresh_token();
    }
  }

  // One reduction task per (direction, layer): deterministic replica order.
  for (int dir = 0; dir < 2; ++dir) {
    for (int l = 0; l < cfg.num_layers; ++l) {
      std::vector<Access> acc;
      for (int rep = 0; rep < opts_.num_replicas; ++rep) {
        const void* a =
            opts_.executable
                ? static_cast<const void*>(
                      replica_grads_[static_cast<std::size_t>(rep)]
                          .layers[dir][static_cast<std::size_t>(l)]
                          .dw.data())
                : arenas_[static_cast<std::size_t>(rep)].data() +
                      grads_bases_[static_cast<std::size_t>(rep)] +
                      static_cast<std::size_t>(dir) * cfg.num_layers + l;
        acc.push_back(in(a));
      }
      acc.push_back(
          inout(master_layer[static_cast<std::size_t>(dir * cfg.num_layers + l)]));
      std::function<void()> fn;
      if (opts_.executable) {
        fn = [this, dir, l] {
          auto& master =
              master_grads_.layers[dir][static_cast<std::size_t>(l)];
          for (auto& rg : replica_grads_) {
            master.accumulate(rg.layers[dir][static_cast<std::size_t>(l)]);
          }
        };
      }
      TaskSpec spec;
      spec.kind = TaskKind::kGradReduce;
      const auto& shape_ref = net_.layer(dir, l);
      spec.flops = 2.0 * opts_.num_replicas *
                   static_cast<double>(shape_ref.param_count());
      spec.working_set_bytes =
          (opts_.num_replicas + 1) * shape_ref.param_count() * sizeof(float);
      spec.layer = l;
      spec.name = "reduce." + std::to_string(dir) + "." + std::to_string(l);
      add_op(std::move(fn), std::move(acc), std::move(spec), false);
    }
  }

  // Dense-layer gradient reduction.
  {
    std::vector<Access> acc;
    for (int rep = 0; rep < opts_.num_replicas; ++rep) {
      const void* a =
          opts_.executable
              ? static_cast<const void*>(
                    replica_grads_[static_cast<std::size_t>(rep)].dw_out.data())
              : arenas_[static_cast<std::size_t>(rep)].data() +
                    grads_bases_[static_cast<std::size_t>(rep)] +
                    2U * static_cast<std::size_t>(cfg.num_layers);
      acc.push_back(in(a));
    }
    acc.push_back(inout(master_dense));
    std::function<void()> fn;
    if (opts_.executable) {
      fn = [this] {
        for (auto& rg : replica_grads_) {
          kernels::accumulate(master_grads_.dw_out.view(), rg.dw_out.cview());
          kernels::accumulate(master_grads_.db_out.view(),
                              rg.db_out.cview());
        }
      };
    }
    TaskSpec spec;
    spec.kind = TaskKind::kGradReduce;
    spec.flops = 2.0 * opts_.num_replicas *
                 static_cast<double>(cfg.num_classes) * cfg.merged_size();
    spec.name = "reduce.dense";
    add_op(std::move(fn), std::move(acc), std::move(spec), false);
  }
}

}  // namespace bpar::graph
