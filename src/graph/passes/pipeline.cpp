#include "graph/passes/pass.hpp"

#include <algorithm>

namespace bpar::graph::passes {

namespace {
std::size_t live_ops(const OpList& ops) {
  return static_cast<std::size_t>(
      std::count_if(ops.begin(), ops.end(),
                    [](const Op& op) { return !op.dead; }));
}
}  // namespace

std::string PassPipeline::signature() const {
  if (passes_.empty()) return "none";
  std::string sig;
  for (const auto& pass : passes_) {
    if (!sig.empty()) sig += '+';
    sig += pass->name();
  }
  return sig;
}

void PassPipeline::run(OpList& ops, PassContext& ctx) const {
  if (ctx.report != nullptr) {
    ctx.report->signature = signature();
    ctx.report->tasks_before = live_ops(ops);
  }
  for (const auto& pass : passes_) {
    ctx.last_detail.clear();
    const std::size_t rewrites = pass->run(ops, ctx);
    if (ctx.report != nullptr) {
      ctx.report->entries.push_back(
          {std::string(pass->name()), rewrites, std::move(ctx.last_detail)});
    }
  }
  if (ctx.report != nullptr) ctx.report->tasks_after = live_ops(ops);
}

}  // namespace bpar::graph::passes
