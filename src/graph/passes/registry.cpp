#include "graph/passes/registry.hpp"

#include <cstdio>
#include <cstdlib>

#include "graph/passes/builtin.hpp"

namespace bpar::graph::passes {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_none(std::string_view spec) {
  return spec.empty() || spec == "none" || spec == "off";
}

int parse_int_param(const std::string& param, int fallback) {
  if (param.empty()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(param.c_str(), &end, 10);
  if (end == param.c_str() || *end != '\0' || v <= 0) return fallback;
  return static_cast<int>(v);
}

}  // namespace

std::vector<PassSpec> parse_pass_spec(std::string_view spec) {
  spec = trim(spec);
  if (is_none(spec)) return {};
  std::vector<PassSpec> out;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view token = trim(spec.substr(0, comma));
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (token.empty()) continue;
    if (token == "default") {
      for (PassSpec& s : parse_pass_spec(kDefaultPassSpec)) {
        out.push_back(std::move(s));
      }
      continue;
    }
    const std::size_t colon = token.find(':');
    PassSpec s;
    s.name = std::string(trim(token.substr(0, colon)));
    if (colon != std::string_view::npos) {
      s.param = std::string(trim(token.substr(colon + 1)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> known_passes() {
  return {"gate_fusion", "input_precompute", "coarsen"};
}

std::unique_ptr<GraphPass> make_pass(const PassSpec& spec) {
  if (spec.name == "gate_fusion") return make_gate_fusion();
  if (spec.name == "input_precompute") {
    return make_input_precompute(parse_int_param(spec.param, 4));
  }
  if (spec.name == "coarsen") {
    return make_task_coarsening(
        static_cast<std::uint64_t>(parse_int_param(spec.param, 0)));
  }
  return nullptr;
}

PassPipeline make_pipeline(std::string_view spec) {
  PassPipeline pipe;
  for (const PassSpec& s : parse_pass_spec(spec)) {
    std::unique_ptr<GraphPass> pass = make_pass(s);
    if (pass == nullptr) {
      std::fprintf(stderr,
                   "[bpar] warning: unknown graph pass '%s' ignored "
                   "(known: gate_fusion, input_precompute, coarsen)\n",
                   s.name.c_str());
      continue;
    }
    pipe.add(std::move(pass));
  }
  return pipe;
}

std::string effective_pass_spec(std::string_view requested) {
  std::string spec{trim(requested)};
  if (spec.empty() || spec == "default") {
    const char* env = std::getenv("BPAR_GRAPH_PASSES");
    spec = (env != nullptr && *env != '\0') ? env
                                            : std::string(kDefaultPassSpec);
  }
  if (is_none(trim(spec))) return "";
  for (const PassSpec& s : parse_pass_spec(spec)) {
    bool known = false;
    for (const std::string& name : known_passes()) {
      if (s.name == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr,
                   "[bpar] warning: unknown graph pass '%s' in \"%s\"; "
                   "falling back to default pipeline \"%s\"\n",
                   s.name.c_str(), spec.c_str(),
                   std::string(kDefaultPassSpec).c_str());
      return std::string(kDefaultPassSpec);
    }
  }
  return spec;
}

}  // namespace bpar::graph::passes
