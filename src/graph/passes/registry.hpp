// Pass registry + spec-string parsing (DESIGN.md §5k).
//
// A pass spec is a comma list of "name" or "name:param" entries:
//   ""            no passes (graph::BuildOptions default — the faithful
//                 Algorithms 1-3 graph)
//   "default"     the standard bit-exact pipeline (kDefaultPassSpec)
//   "none"/"off"  explicitly no passes
//   "gate_fusion,input_precompute:8,coarsen:1500"
//
// `effective_pass_spec` is the executor/CLI entry point and mirrors the
// BPAR_KERNEL_BACKEND pattern: the BPAR_GRAPH_PASSES env var overrides the
// default, and unknown pass names warn once on stderr and fall back to the
// default pipeline.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/passes/pass.hpp"

namespace bpar::graph::passes {

inline constexpr std::string_view kDefaultPassSpec =
    "gate_fusion,input_precompute,coarsen";

struct PassSpec {
  std::string name;
  std::string param;  // after ':', "" when absent
};

/// Splits a spec string; "" / "none" / "off" → empty, "default" expands.
[[nodiscard]] std::vector<PassSpec> parse_pass_spec(std::string_view spec);

/// Registered pass names, registry order.
[[nodiscard]] std::vector<std::string> known_passes();

/// nullptr when spec.name is unknown.
[[nodiscard]] std::unique_ptr<GraphPass> make_pass(const PassSpec& spec);

/// Pipeline from a spec string; unknown names are skipped with a one-line
/// stderr warning.
[[nodiscard]] PassPipeline make_pipeline(std::string_view spec);

/// Resolves a user/executor-level request into a canonical
/// graph::BuildOptions::passes value: "" and "default" expand through
/// BPAR_GRAPH_PASSES, "none"/"off" → "", and any unknown pass name warns
/// and falls back to the default pipeline.
[[nodiscard]] std::string effective_pass_spec(std::string_view requested);

}  // namespace bpar::graph::passes
