// TaskCoarsening: amortize dispatch cost over tiny adjacent tasks.
//
// A task whose body is shorter than the runtime's per-task dispatch cost
// (queue push/pop, dependency countdown — measured via RunStats and fed in
// through PassContext::dispatch_ns) wastes more time being scheduled than
// running. This pass merges an op into its *immediately preceding* live op
// when (a) the predecessor writes an address the op accesses — so they
// could never run concurrently anyway — and (b) either body is tiny. Only
// immediately-adjacent pairs are merged: with no live op between them, the
// merged op's position cannot reorder any third task's address resolution,
// so the dependency frontier is preserved exactly (access-mode union below).
//
// Cells, chunkable ops, barriers, and precompute GEMMs never coarsen; a
// chain stops at 8 fused bodies.
#include <algorithm>
#include <string>

#include "graph/passes/builtin.hpp"
#include "graph/passes/pass.hpp"

namespace bpar::graph::passes {

namespace {

using taskrt::Access;
using taskrt::AccessMode;

// Roofline body estimate with the paper's per-core calibration (40 GFLOP/s,
// 12 GB/s effective): flops/40 and bytes/12 are both in ns.
std::uint64_t est_body_ns(const Op& op) {
  if (op.spec.flops > 0.0 || op.spec.working_set_bytes > 0) {
    const double ns =
        std::max(op.spec.flops / 40.0,
                 static_cast<double>(op.spec.working_set_bytes) / 12.0);
    return static_cast<std::uint64_t>(ns);
  }
  return op.spec.cost_hint_ns;
}

bool fusable(const Op& op) {
  return !op.dead && !op.cell.has_value() && !op.chunkable &&
         op.spec.kind != taskrt::TaskKind::kBarrier &&
         op.spec.kind != taskrt::TaskKind::kInputPrecompute;
}

/// True when `a` writes an address `b` touches (RAW or WAW — they would be
/// serialized by the graph regardless).
bool dependent(const Op& a, const Op& b) {
  for (const Access& aw : a.accesses) {
    if (aw.mode == AccessMode::kIn) continue;
    for (const Access& bacc : b.accesses) {
      if (bacc.addr == aw.addr) return true;
    }
  }
  return false;
}

/// Merged mode of an address first accessed as `first`, later as `later`
/// within the same fused body: an initial read of externally produced data
/// followed by a write must stay visible as both (kInOut); an initial write
/// already owns the slot, so later accesses are internal.
AccessMode combine(AccessMode first, AccessMode later) {
  if (first == AccessMode::kIn &&
      (later == AccessMode::kOut || later == AccessMode::kInOut)) {
    return AccessMode::kInOut;
  }
  return first;
}

void merge_into(Op& a, Op& b) {
  for (const Access& bacc : b.accesses) {
    bool found = false;
    for (Access& aacc : a.accesses) {
      if (aacc.addr == bacc.addr) {
        aacc.mode = combine(aacc.mode, bacc.mode);
        found = true;
        break;
      }
    }
    if (!found) a.accesses.push_back(bacc);
  }
  if (a.fn || b.fn) {
    a.fn = [fa = std::move(a.fn), fb = std::move(b.fn)] {
      if (fa) fa();
      if (fb) fb();
    };
  }
  a.spec.name += "+" + b.spec.name;
  a.spec.kind = taskrt::TaskKind::kCoarsened;
  a.spec.flops += b.spec.flops;
  a.spec.working_set_bytes += b.spec.working_set_bytes;
  a.spec.cost_hint_ns += b.spec.cost_hint_ns;
  a.fused_bodies += b.fused_bodies;
  a.gemms += b.gemms;
  b.dead = true;
}

class TaskCoarsening final : public GraphPass {
 public:
  explicit TaskCoarsening(std::uint64_t threshold_ns)
      : threshold_ns_(threshold_ns) {}

  [[nodiscard]] std::string_view name() const override { return "coarsen"; }

  std::size_t run(OpList& ops, PassContext& ctx) override {
    const std::uint64_t threshold =
        threshold_ns_ != 0 ? threshold_ns_ : 4 * ctx.dispatch_ns;
    std::size_t merges = 0;
    std::size_t i = 0;
    while (i < ops.size()) {
      // Ops between i and j are only ever dead because this loop merged
      // them into i, so the region stays conflict-free.
      std::size_t j = i + 1;
      while (j < ops.size() && ops[j].dead) ++j;
      if (j >= ops.size()) break;
      Op& a = ops[i];
      Op& b = ops[j];
      if (fusable(a) && fusable(b) && a.spec.replica == b.spec.replica &&
          a.fused_bodies + b.fused_bodies <= 8 &&
          std::min(est_body_ns(a), est_body_ns(b)) <= threshold &&
          dependent(a, b)) {
        merge_into(a, b);
        ++merges;
        continue;  // try to extend the chain with the next live op
      }
      i = j;
    }
    ctx.last_detail = std::to_string(merges) + " merges at threshold " +
                      std::to_string(threshold) + " ns";
    return merges;
  }

 private:
  std::uint64_t threshold_ns_;
};

}  // namespace

std::unique_ptr<GraphPass> make_task_coarsening(std::uint64_t threshold_ns) {
  return std::make_unique<TaskCoarsening>(threshold_ns);
}

}  // namespace bpar::graph::passes
