// Task-graph optimizer pass framework (DESIGN.md §5k).
//
// TrainingProgram builds its program as a flat list of `Op`s — the
// intermediate task-spec form — runs a `PassPipeline` over it, and only
// then lowers the surviving ops into the dependency-resolved TaskGraph.
// Passes therefore rewrite *descriptors and access lists*, never live
// tasks: a forward cell carries a `CellInfo` instead of a closure, and its
// body is generated at lowering time from whatever the passes left behind.
//
// Invariants every pass must preserve (tested by tests/test_passes.cpp):
//  * creation order stays topological — an op may only read addresses
//    written by ops earlier in the list;
//  * the external dependency frontier of a rewritten region is unchanged
//    (same addresses read and written, modes at least as strong);
//  * default-pipeline rewrites are bit-exact versus the unfused graph for
//    fp32 and int8, training and inference.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "taskrt/task_graph.hpp"

namespace bpar::rnn {
struct LayerParams;
class Workspace;
}  // namespace bpar::rnn

namespace bpar::kernels {
class QuantizedMatrix;
}

namespace bpar::graph {
class TrainingProgram;
}

namespace bpar::graph::passes {

/// Forward-cell descriptor: everything needed to (re)generate the task
/// body at lowering time. Passes flip the rewrite flags below instead of
/// touching closures.
struct CellInfo {
  rnn::Workspace* ws = nullptr;  // null in shape-only mode
  const rnn::LayerParams* params = nullptr;
  const kernels::QuantizedMatrix* qw = nullptr;  // int8 inference only
  int rep = 0, dir = 0, layer = 0, step = 0, ti = 0;
  int r0 = 0, rb = 0, steps = 0;
  int in_width = 0;  // layer input width (flops bookkeeping)
  int hidden = 0;
  int gates = 0;  // 4 for LSTM, 3 for GRU
  bool lstm = false;
  bool fused_merge = false;  // schedule profile "fused_merge"
  // ---- pass rewrites ----
  bool fuse_gates = false;  // GateFusion: one wide input-side GEMM
  /// InputProjectionPrecompute: rows [ti*rb, (ti+1)*rb) of the program's
  /// precomputed x·W_x^T buffer replace the input-side GEMM(s).
  bool precomputed = false;
  const float* precomp_row0 = nullptr;  // executable mode only
  int precomp_cols = 0;                 // = gates * hidden
};

/// One task in the pre-lowering intermediate form. Non-cell ops carry
/// their closure; cell ops carry a CellInfo and get their body generated
/// at lowering, after every pass has rewritten the descriptor.
struct Op {
  std::function<void()> fn;
  std::vector<taskrt::Access> accesses;
  taskrt::TaskSpec spec;
  bool chunkable = false;
  bool dead = false;     // removed by a pass; skipped at lowering
  int fused_bodies = 1;  // sub-bodies a coarsened op runs in sequence
  int gemms = 0;         // GEMM launches of this body (reporting only)
  std::optional<CellInfo> cell;
};
using OpList = std::vector<Op>;

/// What the pipeline did — stored on the program, surfaced through the
/// RunReport "analysis" section and `bpar_prof analyze`.
struct PassReport {
  struct Entry {
    std::string name;
    std::size_t rewrites = 0;
    std::string detail;
  };
  std::string signature = "none";  // "+"-joined pass names, "none" if empty
  std::vector<Entry> entries;
  std::size_t tasks_before = 0;
  std::size_t tasks_after = 0;
};

struct PassContext {
  TrainingProgram& program;
  bool executable = false;
  bool training = true;
  bool quantized = false;
  /// Per-task dispatch-cost estimate feeding TaskCoarsening (ns).
  std::uint64_t dispatch_ns = 300;
  PassReport* report = nullptr;
  /// A pass may leave a human-readable note here; the pipeline moves it
  /// into its PassReport entry after the pass returns.
  std::string last_detail;
};

/// Forward-cell GEMM launch count under the given rewrite flags. LSTM is
/// built wide (one input + one recurrent GEMM); GRU starts at 4 because the
/// candidate block's recurrent GEMM needs r⊙h_prev. Precompute replaces the
/// whole input side with a row copy.
inline int cell_forward_gemms(bool lstm, bool fuse_gates, bool precomputed) {
  if (precomputed) return lstm ? 1 : 2;
  if (lstm) return 2;
  return fuse_gates ? 3 : 4;
}

class GraphPass {
 public:
  virtual ~GraphPass() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Rewrites `ops` in place; returns the number of rewrites applied.
  virtual std::size_t run(OpList& ops, PassContext& ctx) = 0;
};

class PassPipeline {
 public:
  void add(std::unique_ptr<GraphPass> pass) {
    passes_.push_back(std::move(pass));
  }
  [[nodiscard]] bool empty() const { return passes_.empty(); }
  [[nodiscard]] std::string signature() const;
  /// Runs every pass in order; appends one PassReport entry per pass when
  /// ctx.report is set.
  void run(OpList& ops, PassContext& ctx) const;

 private:
  std::vector<std::unique_ptr<GraphPass>> passes_;
};

}  // namespace bpar::graph::passes
