// GateFusion: one wide input-side gate GEMM per forward cell.
//
// The fused weight layout (LayerParams stores [gate blocks] x [x | h_prev])
// means the LSTM forward is already a single 4H-wide GEMM per operand; this
// pass marks those cells as wide (so analyze can attribute them) and
// rewrites GRU cells, whose input side currently runs as two GEMMs (z,r and
// h̄), into one 3H-wide GEMM: 4 launches → 3. The candidate block's *input*
// contribution is computed before the z,r pointwise stage instead of after,
// which is value-identical — the writes are disjoint and each output
// element's dot product is unchanged. int8 inherits the rewrite through
// QuantView::block (per-row scales make column/row slices exact).
#include <string>

#include "graph/passes/builtin.hpp"
#include "graph/passes/pass.hpp"

namespace bpar::graph::passes {

namespace {

class GateFusion final : public GraphPass {
 public:
  [[nodiscard]] std::string_view name() const override { return "gate_fusion"; }

  std::size_t run(OpList& ops, PassContext& ctx) override {
    std::size_t cells = 0;
    std::size_t gru_saved = 0;
    for (Op& op : ops) {
      if (op.dead || !op.cell.has_value()) continue;
      CellInfo& ci = *op.cell;
      if (ci.fuse_gates) continue;
      ci.fuse_gates = true;
      op.spec.kind = taskrt::TaskKind::kCellForwardFused;
      const int before = op.gemms;
      op.gemms = cell_forward_gemms(ci.lstm, true, ci.precomputed);
      gru_saved += static_cast<std::size_t>(before - op.gemms);
      ++cells;
    }
    ctx.last_detail = std::to_string(cells) + " cells wide-gate, " +
                      std::to_string(gru_saved) + " GEMM launches removed";
    return cells;
  }
};

}  // namespace

std::unique_ptr<GraphPass> make_gate_fusion() {
  return std::make_unique<GateFusion>();
}

}  // namespace bpar::graph::passes
