// Factories for the built-in graph passes (see registry.cpp for names).
#pragma once

#include <cstdint>
#include <memory>

#include "graph/passes/pass.hpp"

namespace bpar::graph::passes {

/// "gate_fusion": mark every forward cell wide-gate. LSTM cells are built
/// wide already (the fused [f|i|g|o] weight layout); GRU cells fold their
/// two input-side GEMMs (z,r and h̄) into one 3H-wide GEMM, 4 → 3 launches.
/// Bit-exact: each output element's dot product is unchanged.
[[nodiscard]] std::unique_ptr<GraphPass> make_gate_fusion();

/// "input_precompute": hoist all timesteps' x·W_x^T of layer 0 into
/// `chunks` sequence-wide GEMM tasks per (replica, direction); the
/// per-timestep cells then row-slice the projection instead of launching
/// their input GEMM. Bit-exact for fp32 and int8 (per-row quantization
/// scales make row-partitioned qgemm results position-invariant).
[[nodiscard]] std::unique_ptr<GraphPass> make_input_precompute(int chunks = 4);

/// "coarsen": merge immediately-adjacent *dependent* non-cell tasks whose
/// estimated body is below `threshold_ns` (0 → 4 × measured dispatch cost
/// from PassContext), preserving the dependency frontier via access-mode
/// union. Chains cap at 8 fused bodies.
[[nodiscard]] std::unique_ptr<GraphPass> make_task_coarsening(
    std::uint64_t threshold_ns = 0);

}  // namespace bpar::graph::passes
