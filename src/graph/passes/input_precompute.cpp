// InputProjectionPrecompute: sequence-wide input GEMM for layer 0.
//
// Layer 0 is the only layer whose inputs (the batch x_t) are all available
// at graph start, so its T input-side GEMMs per (replica, direction) can be
// hoisted into a few (T·B/chunks)×(G·H) GEMM tasks that run concurrently
// with nothing — taking that work OFF the serial recurrent chain
// (Appleyard et al., PAPERS.md). Each per-timestep cell then depends on its
// chunk and copies its row slice into the gate buffer before the recurrent
// beta=1 GEMM, which accumulates in the same order as before: bit-exact for
// fp32 and int8 (activation quantization is per batch row).
//
// The buffers and closures live on TrainingProgram (make_precompute_ops);
// this pass only decides where chunks go and rewrites the cell descriptors.
#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "graph/brnn_graph.hpp"
#include "graph/passes/builtin.hpp"
#include "graph/passes/pass.hpp"

namespace bpar::graph::passes {

namespace {

class InputPrecompute final : public GraphPass {
 public:
  explicit InputPrecompute(int chunks) : chunks_(chunks) {}

  [[nodiscard]] std::string_view name() const override {
    return "input_precompute";
  }

  std::size_t run(OpList& ops, PassContext& ctx) override {
    struct Group {
      std::size_t first = 0;
      std::vector<std::size_t> cells;
    };
    // (rep, dir) → layer-0 forward cells, keyed so iteration is stable.
    std::map<int, Group> groups;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      if (op.dead || !op.cell.has_value()) continue;
      const CellInfo& ci = *op.cell;
      if (ci.layer != 0 || ci.precomputed) continue;
      auto [it, inserted] = groups.try_emplace(ci.rep * 2 + ci.dir);
      if (inserted) it->second.first = i;
      it->second.cells.push_back(i);
    }

    std::size_t rewritten = 0;
    std::size_t chunk_ops = 0;
    // Insert positions collected first, applied back-to-front so earlier
    // indices stay valid.
    std::vector<std::pair<std::size_t, OpList>> inserts;
    for (auto& [key, group] : groups) {
      const int rep = key / 2;
      const int dir = key % 2;
      OpList pre = ctx.program.make_precompute_ops(rep, dir, chunks_);
      if (pre.empty()) continue;
      chunk_ops += pre.size();
      for (const std::size_t idx : group.cells) {
        Op& op = ops[idx];
        CellInfo& ci = *op.cell;
        ci.precomputed = true;
        ci.precomp_row0 = ctx.program.precompute_row(rep, dir, ci.ti);
        ci.precomp_cols = ctx.program.precompute_cols(rep, dir);
        op.accesses.push_back(
            taskrt::in(ctx.program.precompute_chunk_addr(rep, dir, ci.ti)));
        op.gemms = cell_forward_gemms(ci.lstm, ci.fuse_gates, true);
        const double input_flops = 2.0 * ci.rb * ci.in_width *
                                   static_cast<double>(ci.gates) * ci.hidden;
        op.spec.flops = std::max(0.0, op.spec.flops - input_flops);
        ++rewritten;
      }
      inserts.emplace_back(group.first, std::move(pre));
    }
    for (auto it = inserts.rbegin(); it != inserts.rend(); ++it) {
      ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(it->first),
                 std::make_move_iterator(it->second.begin()),
                 std::make_move_iterator(it->second.end()));
    }
    ctx.last_detail = std::to_string(rewritten) + " layer-0 cells fed by " +
                      std::to_string(chunk_ops) + " sequence-wide GEMMs";
    return rewritten;
  }

 private:
  int chunks_;
};

}  // namespace

std::unique_ptr<GraphPass> make_input_precompute(int chunks) {
  return std::make_unique<InputPrecompute>(chunks);
}

}  // namespace bpar::graph::passes
