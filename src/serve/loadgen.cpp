#include "serve/loadgen.hpp"

#include <chrono>
#include <mutex>
#include <thread>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace bpar::serve {

Request make_request(const rnn::NetworkConfig& config, int steps,
                     std::uint64_t seed, bool with_labels) {
  util::Rng rng(seed);
  Request request;
  request.steps = steps;
  request.features.resize(static_cast<std::size_t>(steps) *
                          static_cast<std::size_t>(config.input_size));
  for (float& f : request.features) {
    f = static_cast<float>(rng.normal(0.0, 1.0));
  }
  if (with_labels) {
    const int outputs = config.many_to_many ? steps : 1;
    request.labels.resize(static_cast<std::size_t>(outputs));
    for (int& label : request.labels) {
      label = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(config.num_classes)));
    }
  }
  return request;
}

LoadgenResult run_load(InferenceEngine& engine,
                       const LoadgenOptions& options) {
  BPAR_CHECK(options.clients >= 1, "need at least one client");
  BPAR_CHECK(!options.seq_lengths.empty(), "need at least one seq length");
  using Clock = std::chrono::steady_clock;

  LoadgenResult result;
  std::mutex mu;  // guards result aggregation across client threads

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<double> local_ms;
      local_ms.reserve(static_cast<std::size_t>(options.requests_per_client));
      std::uint64_t ok = 0;
      std::uint64_t rejected = 0;
      std::uint64_t expired = 0;
      std::uint64_t failed = 0;
      for (int i = 0; i < options.requests_per_client; ++i) {
        const int steps = options.seq_lengths[static_cast<std::size_t>(i) %
                                              options.seq_lengths.size()];
        Request request = make_request(
            engine.config(), steps,
            options.seed + static_cast<std::uint64_t>(c) * 100003U +
                static_cast<std::uint64_t>(i),
            options.with_labels);
        const Clock::time_point t0 = Clock::now();
        const Response response = engine.infer(std::move(request));
        const Clock::time_point t1 = Clock::now();
        switch (response.status) {
          case Status::kOk:
            ++ok;
            local_ms.push_back(
                std::chrono::duration<double, std::milli>(t1 - t0).count());
            break;
          case Status::kRejected:
            ++rejected;
            break;
          case Status::kDeadlineExceeded:
            ++expired;
            break;
          case Status::kShutdown:
          case Status::kFailed:
            ++failed;
            break;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.ok += ok;
      result.rejected += rejected;
      result.expired += expired;
      result.failed += failed;
      result.latencies_ms.insert(result.latencies_ms.end(), local_ms.begin(),
                                 local_ms.end());
    });
  }
  for (std::thread& t : clients) t.join();

  result.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.throughput_rps =
      result.wall_s > 0.0 ? static_cast<double>(result.ok) / result.wall_s
                          : 0.0;
  result.latency_ms = util::percentiles(result.latencies_ms);
  return result;
}

}  // namespace bpar::serve
