#include "serve/loadgen.hpp"

#include <chrono>
#include <cmath>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace bpar::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-client tally, merged under one lock at the end of the run.
struct ClientTally {
  std::array<std::uint64_t, kNumStatuses> by_status{};
  std::array<std::vector<double>, kNumStatuses> latency_ms;
};

void record(ClientTally& tally, Status status, Clock::time_point t0,
            Clock::time_point t1) {
  const auto s = static_cast<std::size_t>(status);
  tally.by_status[s] += 1;
  tally.latency_ms[s].push_back(
      std::chrono::duration<double, std::milli>(t1 - t0).count());
}

struct Outstanding {
  std::future<Response> future;
  Clock::time_point t0;
};

/// Reaps every already-completed future in `pending` without blocking.
void reap_ready(std::deque<Outstanding>& pending, ClientTally& tally) {
  for (auto it = pending.begin(); it != pending.end();) {
    if (it->future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      const Response response = it->future.get();
      record(tally, response.status, it->t0, Clock::now());
      it = pending.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

Request make_request(const rnn::NetworkConfig& config, int steps,
                     std::uint64_t seed, bool with_labels) {
  util::Rng rng(seed);
  Request request;
  request.steps = steps;
  request.features.resize(static_cast<std::size_t>(steps) *
                          static_cast<std::size_t>(config.input_size));
  for (float& f : request.features) {
    f = static_cast<float>(rng.normal(0.0, 1.0));
  }
  if (with_labels) {
    const int outputs = config.many_to_many ? steps : 1;
    request.labels.resize(static_cast<std::size_t>(outputs));
    for (int& label : request.labels) {
      label = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(config.num_classes)));
    }
  }
  return request;
}

LoadgenResult run_load(InferenceEngine& engine,
                       const LoadgenOptions& options) {
  BPAR_CHECK(options.clients >= 1, "need at least one client");
  BPAR_CHECK(!options.seq_lengths.empty(), "need at least one seq length");
  BPAR_CHECK(!options.priorities.empty(), "need at least one priority");
  BPAR_CHECK(options.rate_rps >= 0.0, "rate_rps must be >= 0");

  LoadgenResult result;
  std::mutex mu;  // guards tally merging across client threads
  std::array<std::vector<double>, kNumStatuses> all_latency_ms;
  const double client_rate =
      options.rate_rps / static_cast<double>(options.clients);

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      ClientTally tally;
      // Independent arrival stream per client, decorrelated from the
      // feature generator streams.
      util::Rng arrivals(options.seed ^ 0x9e3779b97f4a7c15ULL);
      util::Rng stream = arrivals.split(static_cast<std::uint64_t>(c) + 1);
      std::deque<Outstanding> pending;
      Clock::time_point next_arrival = Clock::now();
      for (int i = 0; i < options.requests_per_client; ++i) {
        const int steps = options.seq_lengths[static_cast<std::size_t>(i) %
                                              options.seq_lengths.size()];
        Request request = make_request(
            engine.config(), steps,
            options.seed + static_cast<std::uint64_t>(c) * 100003U +
                static_cast<std::uint64_t>(i),
            options.with_labels);
        request.priority = options.priorities[static_cast<std::size_t>(i) %
                                              options.priorities.size()];
        if (options.rate_rps > 0.0) {
          // Open loop: exponential inter-arrival gap, and while waiting for
          // the next arrival keep reaping completed responses so latency is
          // observed within one poll period of delivery.
          const double gap_s =
              -std::log(1.0 - stream.uniform()) / client_rate;
          next_arrival += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(gap_s));
          for (;;) {
            reap_ready(pending, tally);
            const Clock::time_point now = Clock::now();
            if (now >= next_arrival) break;
            std::this_thread::sleep_for(std::min<Clock::duration>(
                next_arrival - now, std::chrono::microseconds(200)));
          }
          if (options.deadline_us > 0) {
            request.deadline = Clock::now() +
                               std::chrono::microseconds(options.deadline_us);
          }
          const Clock::time_point t0 = Clock::now();
          pending.push_back(
              Outstanding{engine.submit(std::move(request)), t0});
        } else {
          // Closed loop: block on each response before the next request.
          if (options.deadline_us > 0) {
            request.deadline = Clock::now() +
                               std::chrono::microseconds(options.deadline_us);
          }
          const Clock::time_point t0 = Clock::now();
          const Response response = engine.infer(std::move(request));
          record(tally, response.status, t0, Clock::now());
        }
      }
      while (!pending.empty()) {
        reap_ready(pending, tally);
        if (!pending.empty()) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      for (int s = 0; s < kNumStatuses; ++s) {
        const auto idx = static_cast<std::size_t>(s);
        result.by_status[idx] += tally.by_status[idx];
        all_latency_ms[idx].insert(all_latency_ms[idx].end(),
                                   tally.latency_ms[idx].begin(),
                                   tally.latency_ms[idx].end());
      }
    });
  }
  for (std::thread& t : clients) t.join();

  result.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.ok = result.by_status[static_cast<std::size_t>(Status::kOk)];
  result.rejected =
      result.by_status[static_cast<std::size_t>(Status::kRejected)];
  result.shed = result.by_status[static_cast<std::size_t>(Status::kShed)];
  result.expired = result.by_status[static_cast<std::size_t>(
      Status::kDeadlineExceeded)];
  result.failed =
      result.by_status[static_cast<std::size_t>(Status::kShutdown)] +
      result.by_status[static_cast<std::size_t>(Status::kFailed)] +
      result.by_status[static_cast<std::size_t>(Status::kInternalError)];
  const std::uint64_t submitted =
      static_cast<std::uint64_t>(options.clients) *
      static_cast<std::uint64_t>(options.requests_per_client);
  result.offered_rps =
      result.wall_s > 0.0 ? static_cast<double>(submitted) / result.wall_s
                          : 0.0;
  result.throughput_rps =
      result.wall_s > 0.0 ? static_cast<double>(result.ok) / result.wall_s
                          : 0.0;
  for (int s = 0; s < kNumStatuses; ++s) {
    const auto idx = static_cast<std::size_t>(s);
    result.latency_by_status[idx] = util::percentiles(all_latency_ms[idx]);
  }
  result.latencies_ms =
      std::move(all_latency_ms[static_cast<std::size_t>(Status::kOk)]);
  result.latency_ms = util::percentiles(result.latencies_ms);
  return result;
}

}  // namespace bpar::serve
