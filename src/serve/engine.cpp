#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "kernels/backend.hpp"
#include "obs/expo.hpp"
#include "obs/json.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "taskrt/export.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace bpar::serve {

namespace {

constexpr std::chrono::steady_clock::time_point kNoDeadline{};

/// Shared microsecond-scale latency edges for the serve.* histograms.
std::vector<double> latency_edges_us() {
  return {50,    100,   200,    500,    1000,   2000,    5000,
          10000, 20000, 50000, 100000, 200000, 500000, 1000000};
}

obs::HistogramCell& queue_histogram() {
  static obs::HistogramCell& cell =
      obs::Registry::instance().histogram("serve.queue_us",
                                          latency_edges_us());
  return cell;
}

obs::HistogramCell& form_histogram() {
  static obs::HistogramCell& cell = obs::Registry::instance().histogram(
      "serve.batch_form_us", latency_edges_us());
  return cell;
}

obs::HistogramCell& exec_histogram() {
  static obs::HistogramCell& cell =
      obs::Registry::instance().histogram("serve.exec_us",
                                          latency_edges_us());
  return cell;
}

obs::HistogramCell& batch_rows_histogram() {
  static obs::HistogramCell& cell = obs::Registry::instance().histogram(
      "serve.batch_rows", {1.5, 2.5, 4.5, 8.5, 16.5, 32.5, 64.5});
  return cell;
}

obs::HistogramCell& request_histogram() {
  static obs::HistogramCell& cell = obs::Registry::instance().histogram(
      "serve.request_us", latency_edges_us());
  return cell;
}

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Value of `key=value` inside an HTTP query string ("" when absent).
std::string query_param(std::string_view query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(pos, end - pos);
    if (pair.size() > key.size() + 1 &&
        pair.substr(0, key.size()) == key && pair[key.size()] == '=') {
      return std::string(pair.substr(key.size() + 1));
    }
    pos = end + 1;
  }
  return {};
}

/// Numerically stable log(sum(exp(logits))).
double logsumexp(std::span<const float> logits) {
  double hi = logits[0];
  for (const float v : logits) hi = std::max(hi, static_cast<double>(v));
  double sum = 0.0;
  for (const float v : logits) sum += std::exp(static_cast<double>(v) - hi);
  return hi + std::log(sum);
}

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kRejected:
      return "rejected";
    case Status::kShed:
      return "shed";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kShutdown:
      return "shutdown";
    case Status::kFailed:
      return "failed";
    case Status::kInternalError:
      return "internal_error";
  }
  return "unknown";
}

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kBatch:
      return "batch";
  }
  return "unknown";
}

Priority parse_priority(std::string_view name) {
  if (name == "high") return Priority::kHigh;
  if (name == "normal") return Priority::kNormal;
  if (name == "batch") return Priority::kBatch;
  throw util::Error("unknown priority '" + std::string(name) +
                    "' (expected high|normal|batch)");
}

const char* request_stage_name(RequestStage stage) {
  switch (stage) {
    case RequestStage::kSubmitted:
      return "submitted";
    case RequestStage::kQueued:
      return "queued";
    case RequestStage::kSealed:
      return "sealed";
    case RequestStage::kFormed:
      return "formed";
    case RequestStage::kExecBegin:
      return "exec_begin";
    case RequestStage::kExecEnd:
      return "exec_end";
    case RequestStage::kRetry:
      return "retry";
    case RequestStage::kBisect:
      return "bisect";
    case RequestStage::kResponded:
      return "responded";
  }
  return "unknown";
}

const char* health_name(Health health) {
  switch (health) {
    case Health::kHealthy:
      return "healthy";
    case Health::kDegraded:
      return "degraded";
    case Health::kDraining:
      return "draining";
  }
  return "unknown";
}

int InferenceEngine::bucket_rows(int rows, int max_batch) {
  BPAR_CHECK(rows >= 1, "empty micro-batch");
  int bucket = 1;
  while (bucket < rows) bucket *= 2;
  return std::min(bucket, std::max(rows, max_batch));
}

InferenceEngine::InferenceEngine(const rnn::NetworkConfig& config,
                                 EngineOptions options)
    : net_(config),
      options_(options),
      executor_(std::make_unique<exec::BParExecutor>(
          net_,
          exec::BParOptions{.common = options.executor,
                            .record_trace = options.record_trace,
                            .quantized_inference = options.quantized,
                            .passes = options.passes})),
      started_(Clock::now()),
      native_backend_(kernels::active_backend_name()),
      slo_(options.slo) {
  BPAR_CHECK(options_.max_batch >= 1, "max_batch must be >= 1");
  BPAR_CHECK(options_.max_queue >= 1, "max_queue must be >= 1");
  BPAR_CHECK(options_.max_batch_retries >= 0,
             "max_batch_retries must be >= 0");

  // Degradation ladder, most valuable acceleration first: each rung keeps
  // the flags of the previous one and switches one more thing off.
  ladder_.push_back(DegradeStep{});  // level 0: full service
  DegradeStep step;
  if (options_.quantized) {
    step.name = "fp32";
    step.disable_quantized = true;
    ladder_.push_back(step);
  }
  if (native_backend_ != std::string("scalar")) {
    step.name = "scalar-backend";
    step.scalar_backend = true;
    ladder_.push_back(step);
  }
  if (options_.enable_batching && options_.max_batch > 1) {
    step.name = "batch-1";
    step.batch_one = true;
    ladder_.push_back(step);
  }

  start_flight_recorder();
  start_observability();
  touch_progress();
  if (options_.watchdog_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void InferenceEngine::start_flight_recorder() {
  if (options_.enable_profiler) {
    profiler_ = std::make_unique<obs::SpanProfiler>(
        obs::ProfilerOptions{.period_us = options_.profiler_period_us});
    profiler_->start();
  }
  if (options_.dump_dir.empty()) return;
  obs::FlightRecorderOptions fo;
  fo.dir = options_.dump_dir;
  fo.max_bundles = options_.dump_max_bundles;
  fo.max_total_bytes = options_.dump_max_total_bytes;
  fo.debounce_ms = options_.dump_debounce_ms;
  flight_ = std::make_unique<obs::FlightRecorder>(fo);
  flight_->set_trace_writer(
      [this](std::ostream& os) { return write_flight_trace(os); });
  flight_->set_state_json([this] { return statz_json(); });
  flight_->set_profile_text([this] {
    return profiler_ != nullptr ? profiler_->folded_text() : std::string();
  });
  if (!flight_->install_fatal_handler()) {
    BPAR_LOG_WARN << "serve: fatal-signal dump marker unavailable "
                     "(another recorder owns the handlers?)";
  }
  BPAR_LOG_INFO << "serve: flight recorder armed, dumping to "
                << options_.dump_dir;
}

void InferenceEngine::start_observability() {
  if (options_.enable_sampler || options_.stats_port >= 0) {
    obs::SamplerOptions sampler_options;
    sampler_options.period_ms = options_.sampler_period_ms;
    sampler_options.rate_series = {"serve.requests", "serve.completed"};
    sampler_ = std::make_unique<obs::MetricsSampler>(sampler_options);
    sampler_->start();
  }
  if (options_.stats_port >= 0) {
    stats_server_ = std::make_unique<obs::StatsServer>();
    stats_server_->handle("/healthz", [](std::string_view) {
      return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
    });
    stats_server_->handle("/metrics", [](std::string_view) {
      return obs::HttpResponse{
          200, "text/plain; version=0.0.4; charset=utf-8",
          obs::prometheus_text(
              obs::Registry::instance().snapshot(/*include_series=*/false))};
    });
    stats_server_->handle("/statz", [this](std::string_view) {
      return obs::HttpResponse{200, "application/json", statz_json()};
    });
    // Manual flight dump: GET /debug/dump[?reason=<slug>]. Debounced like
    // every other trigger so a curl loop cannot flood the directory.
    stats_server_->handle("/debug/dump", [this](std::string_view query) {
      std::string reason = query_param(query, "reason");
      if (reason.empty()) reason = "manual";
      const obs::DumpResult result = trigger_dump(reason);
      std::string body = "{\"written\": ";
      body += result.written ? "true" : "false";
      body += ", \"reason\": " + obs::json_quote(result.reason);
      if (!result.skipped.empty()) {
        body += ", \"skipped\": " + obs::json_quote(result.skipped);
      }
      if (result.written) {
        body += ", \"trace\": " + obs::json_quote(result.trace_path);
        body += ", \"report\": " + obs::json_quote(result.report_path);
      }
      body += "}\n";
      return obs::HttpResponse{result.written ? 200 : 503,
                               "application/json", body};
    });
    // Live profile window: GET /profilez?seconds=N returns collapsed
    // flamegraph text. Blocks the (single-connection) stats thread for the
    // window, which is exactly what a "profile the next N seconds" call
    // means.
    stats_server_->handle("/profilez", [this](std::string_view query) {
      double seconds = 2.0;
      if (const std::string v = query_param(query, "seconds"); !v.empty()) {
        seconds = std::strtod(v.c_str(), nullptr);
      }
      seconds = std::clamp(seconds, 0.1, 30.0);
      return obs::HttpResponse{200, "text/plain; charset=utf-8",
                               profile_folded(seconds)};
    });
    if (stats_server_->start(
            static_cast<std::uint16_t>(options_.stats_port))) {
      BPAR_LOG_INFO << "serve: stats endpoint listening on port "
                    << stats_server_->port()
                    << " (/metrics /statz /healthz /profilez /debug/dump)";
    } else {
      BPAR_LOG_WARN << "serve: could not bind stats port "
                    << options_.stats_port << "; serving without endpoint";
      stats_server_.reset();
    }
  }
}

InferenceEngine::~InferenceEngine() { shutdown(); }

void InferenceEngine::load_weights(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BPAR_CHECK(in.good(), "cannot open ", path);
  net_.load(in);
  executor_->refresh_quantized_weights();
}

void InferenceEngine::warmup(std::span<const int> seq_lengths) {
  BPAR_SPAN("serve.warmup");
  for (const int steps : seq_lengths) {
    for (int rows = 1; rows <= options_.max_batch; rows *= 2) {
      (void)executor_->infer_program(steps, rows);
    }
    if (!options_.enable_batching) {
      (void)executor_->infer_program(steps, 1);
    }
  }
}

std::string InferenceEngine::validate(const Request& request) const {
  const auto& cfg = net_.config();
  if (request.steps < 1) return "request has no timesteps";
  const auto want = static_cast<std::size_t>(request.steps) *
                    static_cast<std::size_t>(cfg.input_size);
  if (request.features.size() != want) {
    return "feature count " + std::to_string(request.features.size()) +
           " != steps*input_size = " + std::to_string(want);
  }
  const std::size_t outputs =
      cfg.many_to_many ? static_cast<std::size_t>(request.steps) : 1U;
  if (!request.labels.empty() && request.labels.size() != outputs) {
    return "label count " + std::to_string(request.labels.size()) +
           " != outputs = " + std::to_string(outputs);
  }
  for (const int label : request.labels) {
    if (label < 0 || label >= cfg.num_classes) return "label out of range";
  }
  return {};
}

std::size_t InferenceEngine::total_queued_locked() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

std::uint32_t InferenceEngine::effective_shed_wait_us() const {
  return options_.shed_wait_us != 0 ? options_.shed_wait_us
                                    : 16U * options_.max_delay_us;
}

std::future<Response> InferenceEngine::submit(Request request) {
  BPAR_SPAN("serve.submit");
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  const std::uint64_t id =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("serve.requests").add();
  record_request_event(id, RequestStage::kSubmitted);

  Response immediate;
  immediate.id = id;
  if (std::string error = validate(request); !error.empty()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.failed").add();
    immediate.status = Status::kFailed;
    immediate.error = std::move(error);
    record_request_event(id, RequestStage::kResponded,
                         static_cast<std::int32_t>(Status::kFailed));
    promise.set_value(std::move(immediate));
    return future;
  }
  // An already-expired deadline never earns a queue slot: answering now
  // keeps dead requests from delaying live ones through the bounded queue.
  if (request.deadline != kNoDeadline && Clock::now() > request.deadline) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.deadline_exceeded").add();
    immediate.status = Status::kDeadlineExceeded;
    record_slo(Status::kDeadlineExceeded, 0.0);
    record_request_event(
        id, RequestStage::kResponded,
        static_cast<std::int32_t>(Status::kDeadlineExceeded));
    promise.set_value(std::move(immediate));
    return future;
  }

  const auto cls = static_cast<std::size_t>(request.priority);
  const std::size_t quota = options_.class_quota[cls] != 0
                                ? options_.class_quota[cls]
                                : options_.max_queue;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      immediate.status = Status::kShutdown;
    } else if (total_queued_locked() >= options_.max_queue ||
               queues_[cls].size() >= quota) {
      immediate.status = Status::kRejected;
    } else {
      Pending pending;
      pending.request = std::move(request);
      pending.promise = std::move(promise);
      pending.enqueued = Clock::now();
      pending.id = id;
      obs::serve_queue_memory().on_alloc(pending_bytes(pending));
      queues_[cls].push_back(std::move(pending));
      publish_queue_depths_locked();
      record_request_event(id, RequestStage::kQueued,
                           static_cast<std::int32_t>(cls));
      cv_.notify_all();
      return future;
    }
  }
  if (immediate.status == Status::kRejected) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.rejected").add();
  }
  record_request_event(id, RequestStage::kResponded,
                       static_cast<std::int32_t>(immediate.status));
  promise.set_value(std::move(immediate));
  return future;
}

Response InferenceEngine::infer(Request request) {
  return submit(std::move(request)).get();
}

void InferenceEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed) &&
        !dispatcher_.joinable()) {
      return;
    }
    stopping_.store(true, std::memory_order_relaxed);
    set_health(Health::kDraining);
  }
  cv_.notify_all();
  watchdog_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (watchdog_.joinable()) watchdog_.join();
  // A degraded engine may have switched the process-global kernel backend
  // to scalar; leaving that behind would slow every later user.
  if (degrade_level_.load(std::memory_order_relaxed) > 0 &&
      !native_backend_.empty()) {
    (void)kernels::set_backend(native_backend_);
  }
  // Observability plane last: /statz handlers read stats(), so the
  // listener must not outlive anything it snapshots.
  if (stats_server_ != nullptr) stats_server_->stop();
  if (sampler_ != nullptr) sampler_->stop();
  if (profiler_ != nullptr) profiler_->stop();
}

void InferenceEngine::shed_overdue_locked(Clock::time_point now) {
  const std::uint32_t limit_us = effective_shed_wait_us();
  const auto cap = static_cast<std::size_t>(options_.max_batch);
  bool any = false;
  // Lowest class first; kHigh (class 0) is never shed. Stop as soon as the
  // backlog fits in one micro-batch again — shedding is a pressure valve,
  // not a purge.
  for (int cls = kNumPriorities - 1; cls >= 1; --cls) {
    auto& queue = queues_[static_cast<std::size_t>(cls)];
    while (!queue.empty() && total_queued_locked() > cap &&
           us_between(queue.front().enqueued, now) >
               static_cast<double>(limit_us)) {
      Pending victim = std::move(queue.front());
      queue.pop_front();
      obs::serve_queue_memory().on_free(pending_bytes(victim));
      any = true;
      shed_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::instance().counter("serve.shed").add();
      record_slo(Status::kShed, 0.0);
      record_request_event(victim.id, RequestStage::kResponded,
                           static_cast<std::int32_t>(Status::kShed));
      Response response;
      response.id = victim.id;
      response.status = Status::kShed;
      response.queue_us = us_between(victim.enqueued, now);
      victim.promise.set_value(std::move(response));
    }
  }
  if (any) {
    BPAR_SPAN("serve.shed");
    publish_queue_depths_locked();
  }
}

void InferenceEngine::dispatcher_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return stopping_.load(std::memory_order_relaxed) ||
             total_queued_locked() > 0;
    });
    touch_progress();
    if (total_queued_locked() == 0) return;  // stopping && drained

    shed_overdue_locked(Clock::now());
    if (total_queued_locked() == 0) continue;

    // Strict priority: the head comes from the highest non-empty class.
    // The head request defines the micro-batch's shape group: BRNN outputs
    // depend on the whole sequence, so only requests with the SAME length
    // coalesce (the batch dimension pads; timesteps never do).
    std::size_t head_cls = 0;
    while (queues_[head_cls].empty()) ++head_cls;
    const int cap =
        (options_.enable_batching &&
         !ladder_[static_cast<std::size_t>(
                      degrade_level_.load(std::memory_order_relaxed))]
              .batch_one)
            ? options_.max_batch
            : 1;
    const int steps = queues_[head_cls].front().request.steps;
    const Clock::time_point flush_at =
        queues_[head_cls].front().enqueued +
        std::chrono::microseconds(options_.max_delay_us);
    const auto matching = [&] {
      std::size_t m = 0;
      for (const auto& q : queues_) {
        for (const Pending& p : q) m += (p.request.steps == steps) ? 1 : 0;
      }
      return m;
    };
    while (!stopping_.load(std::memory_order_relaxed) &&
           matching() < static_cast<std::size_t>(cap) &&
           Clock::now() < flush_at) {
      cv_.wait_until(lock, flush_at);
    }

    // Seal: extract up to `cap` same-length requests, classes in priority
    // order, FIFO within a class.
    const Clock::time_point sealed = Clock::now();
    std::vector<Pending> taken;
    taken.reserve(static_cast<std::size_t>(cap));
    for (auto& queue : queues_) {
      for (auto it = queue.begin();
           it != queue.end() &&
           taken.size() < static_cast<std::size_t>(cap);) {
        if (it->request.steps == steps) {
          taken.push_back(std::move(*it));
          obs::serve_queue_memory().on_free(pending_bytes(taken.back()));
          it = queue.erase(it);
        } else {
          ++it;
        }
      }
      if (taken.size() >= static_cast<std::size_t>(cap)) break;
    }
    publish_queue_depths_locked();
    for (const Pending& p : taken) {
      record_request_event(p.id, RequestStage::kSealed,
                           static_cast<std::int32_t>(taken.size()));
    }

    lock.unlock();
    in_flight_.store(true, std::memory_order_relaxed);
    process_batch(std::move(taken), sealed);
    in_flight_.store(false, std::memory_order_relaxed);
    touch_progress();
  }
}

void InferenceEngine::process_batch(std::vector<Pending> taken,
                                    Clock::time_point sealed) {
  BPAR_SPAN("serve.batch");
  auto& registry = obs::Registry::instance();

  // Expired requests answer without executing.
  std::vector<Pending> live;
  live.reserve(taken.size());
  for (Pending& p : taken) {
    if (p.request.deadline != kNoDeadline && sealed > p.request.deadline) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("serve.deadline_exceeded").add();
      record_slo(Status::kDeadlineExceeded, 0.0);
      record_request_event(
          p.id, RequestStage::kResponded,
          static_cast<std::int32_t>(Status::kDeadlineExceeded));
      Response response;
      response.id = p.id;
      response.status = Status::kDeadlineExceeded;
      response.queue_us = us_between(p.enqueued, sealed);
      p.promise.set_value(std::move(response));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  serve_group(std::move(live), sealed, /*depth=*/0);
  check_slo_alert();

  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - started_).count();
  if (elapsed_s > 0.0) {
    registry.gauge("serve.throughput_rps")
        .set(static_cast<double>(completed_.load(std::memory_order_relaxed)) /
             elapsed_s);
  }
}

exec::BParExecutor& InferenceEngine::active_executor() {
  const auto level =
      static_cast<std::size_t>(degrade_level_.load(std::memory_order_relaxed));
  if (options_.quantized && ladder_[level].disable_quantized) {
    if (fp32_executor_ == nullptr) {
      fp32_executor_ = std::make_unique<exec::BParExecutor>(
          net_, exec::BParOptions{.common = options_.executor,
                                  .record_trace = options_.record_trace,
                                  .quantized_inference = false,
                                  .passes = options_.passes});
    }
    return *fp32_executor_;
  }
  return *executor_;
}

std::string InferenceEngine::try_execute(const rnn::BatchData& batch,
                                         bool need_logits, int steps,
                                         int rows,
                                         exec::InferResult& result) {
  try {
    if (options_.rebuild_per_call) {
      // Benchmark mode: pay graph construction on every batch.
      exec::BParExecutor fresh(
          net_, exec::BParOptions{.common = options_.executor,
                                  .quantized_inference = options_.quantized,
                                  .passes = options_.passes});
      result = fresh.infer(batch, {.want_logits = need_logits});
    } else {
      exec::BParExecutor& executor = active_executor();
      result = executor.infer(batch, {.want_logits = need_logits});
      if (options_.record_trace && &executor == executor_.get()) {
        std::lock_guard<std::mutex> lock(trace_mu_);
        last_traced_program_ = &executor.infer_program(steps, rows);
        last_traced_stats_ = result.stats;
      }
    }
  } catch (const taskrt::WatchdogError& e) {
    return std::string("watchdog: ") + e.what();
  } catch (const taskrt::InjectedFault& e) {
    return std::string("injected fault: ") + e.what();
  } catch (const std::exception& e) {
    return e.what();
  }
  if (!result.finite()) {
    return "non-finite outputs (NaN/Inf guard)";
  }
  return {};
}

void InferenceEngine::serve_group(std::vector<Pending> live,
                                  Clock::time_point sealed, int depth) {
  auto& registry = obs::Registry::instance();
  const auto& cfg = net_.config();
  const int real_rows = static_cast<int>(live.size());
  const auto level =
      static_cast<std::size_t>(degrade_level_.load(std::memory_order_relaxed));
  const bool batching =
      options_.enable_batching && !ladder_[level].batch_one;
  const int rows =
      batching ? bucket_rows(real_rows, options_.max_batch) : real_rows;
  const int steps = live.front().request.steps;
  const int outputs = cfg.many_to_many ? steps : 1;
  bool need_logits = false;
  for (const Pending& p : live) {
    need_logits |= p.request.want_logits || !p.request.labels.empty();
  }

  // Form the padded batch. Matrix buffers are zero-initialized, so padding
  // rows are all-zero inputs with label 0; their outputs are never read.
  rnn::BatchData batch;
  batch.x.resize(static_cast<std::size_t>(steps));
  for (auto& m : batch.x) m.resize(rows, cfg.input_size);
  batch.labels.assign(static_cast<std::size_t>(outputs) *
                          static_cast<std::size_t>(rows),
                      0);
  for (int r = 0; r < real_rows; ++r) {
    const Request& request = live[static_cast<std::size_t>(r)].request;
    for (int t = 0; t < steps; ++t) {
      const auto row = batch.x[static_cast<std::size_t>(t)].view().row(r);
      std::copy_n(request.features.data() +
                      static_cast<std::size_t>(t) * cfg.input_size,
                  static_cast<std::size_t>(cfg.input_size), row.begin());
    }
    for (std::size_t t = 0; t < request.labels.size(); ++t) {
      batch.labels[t * static_cast<std::size_t>(rows) +
                   static_cast<std::size_t>(r)] = request.labels[t];
    }
  }
  const Clock::time_point formed = Clock::now();
  for (const Pending& p : live) {
    record_request_event(p.id, RequestStage::kFormed, rows);
  }

  // Bounded retries: fault schedules decorrelate across runtime sessions,
  // so a re-run of the same batch usually clears transient injected (or
  // genuine) faults. Deterministic failures fall through to bisection.
  exec::InferResult result;
  std::string error;
  for (const Pending& p : live) {
    record_request_event(p.id, RequestStage::kExecBegin);
  }
  for (int attempt = 0; attempt <= options_.max_batch_retries; ++attempt) {
    if (attempt > 0) {
      BPAR_SPAN("serve.retry");
      retries_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("serve.retries").add();
      for (const Pending& p : live) {
        record_request_event(p.id, RequestStage::kRetry, attempt);
      }
      touch_progress();
      if (!options_.rebuild_per_call &&
          active_executor().runtime().poisoned()) {
        rebuild_executor();
      }
      error = try_execute(batch, need_logits, steps, rows, result);
    } else {
      error = try_execute(batch, need_logits, steps, rows, result);
    }
    if (error.empty()) break;
    BPAR_LOG_WARN << "serve: batch of " << real_rows << " (attempt "
                  << attempt + 1 << "/" << options_.max_batch_retries + 1
                  << ") failed: " << error;
  }
  const Clock::time_point done = Clock::now();
  for (const Pending& p : live) {
    record_request_event(p.id, RequestStage::kExecEnd,
                         error.empty() ? 0 : 1);
  }

  const double form_us = us_between(sealed, formed);
  const double exec_us = us_between(formed, done);
  batches_.fetch_add(1, std::memory_order_relaxed);
  padded_rows_.fetch_add(static_cast<std::uint64_t>(rows - real_rows),
                         std::memory_order_relaxed);
  registry.counter("serve.batches").add();
  registry.counter("serve.padded_rows")
      .add(static_cast<std::uint64_t>(rows - real_rows));
  form_histogram().add(form_us);
  exec_histogram().add(exec_us);
  batch_rows_histogram().add(static_cast<double>(real_rows));

  if (!error.empty()) {
    note_group_failure();
    // A watchdog error means the runtime itself stalled mid-graph — the
    // most valuable moment to capture, and one retries often erase.
    if (error.rfind("watchdog: ", 0) == 0) {
      (void)trigger_dump("watchdog-error");
    }
    if (real_rows > 1) {
      // Bisection: split the batch and serve each half independently. A
      // deterministically poisoned request ends up alone, answers
      // kInternalError, and its batchmates succeed (per-row results are
      // bit-identical across row buckets, so they lose nothing).
      BPAR_SPAN("serve.bisect");
      bisections_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("serve.bisections").add();
      for (const Pending& p : live) {
        record_request_event(p.id, RequestStage::kBisect, depth);
      }
      const auto mid =
          live.begin() + static_cast<std::ptrdiff_t>(live.size() / 2);
      std::vector<Pending> first(std::make_move_iterator(live.begin()),
                                 std::make_move_iterator(mid));
      std::vector<Pending> second(std::make_move_iterator(mid),
                                  std::make_move_iterator(live.end()));
      serve_group(std::move(first), sealed, depth + 1);
      serve_group(std::move(second), sealed, depth + 1);
      return;
    }
    Pending& p = live.front();
    Response response;
    response.id = p.id;
    response.status = Status::kInternalError;
    response.error = error;
    response.batch_rows = rows;
    response.real_rows = real_rows;
    response.queue_us = us_between(p.enqueued, sealed);
    response.batch_form_us = form_us;
    response.exec_us = exec_us;
    internal_errors_.fetch_add(1, std::memory_order_relaxed);
    registry.counter("serve.internal_errors").add();
    record_slo(Status::kInternalError, 0.0);
    record_request_event(p.id, RequestStage::kResponded,
                         static_cast<std::int32_t>(Status::kInternalError));
    p.promise.set_value(std::move(response));
    return;
  }

  note_group_success();
  for (int r = 0; r < real_rows; ++r) {
    Pending& p = live[static_cast<std::size_t>(r)];
    Response response;
    response.id = p.id;
    response.batch_rows = rows;
    response.real_rows = real_rows;
    response.queue_us = us_between(p.enqueued, sealed);
    response.batch_form_us = form_us;
    response.exec_us = exec_us;
    response.predictions.resize(static_cast<std::size_t>(outputs));
    for (int t = 0; t < outputs; ++t) {
      response.predictions[static_cast<std::size_t>(t)] =
          result.prediction(t, r);
    }
    if (p.request.want_logits) {
      response.logits.reserve(static_cast<std::size_t>(outputs) *
                              static_cast<std::size_t>(cfg.num_classes));
      for (int t = 0; t < outputs; ++t) {
        const auto row = result.logits_row(t, r);
        response.logits.insert(response.logits.end(), row.begin(), row.end());
      }
    }
    if (!p.request.labels.empty()) {
      // Exact per-request loss from this row's logits — the batch-mean loss
      // would smear padding and neighbours into it.
      double loss = 0.0;
      for (int t = 0; t < outputs; ++t) {
        const auto row = result.logits_row(t, r);
        const int label = p.request.labels[static_cast<std::size_t>(t)];
        loss += logsumexp(row) - static_cast<double>(row[
            static_cast<std::size_t>(label)]);
      }
      response.loss = loss / outputs;
    }
    queue_histogram().add(response.queue_us);
    const double request_us = us_between(p.enqueued, Clock::now());
    request_histogram().add(request_us);
    record_slo(Status::kOk, request_us);
    completed_.fetch_add(1, std::memory_order_relaxed);
    registry.counter("serve.completed").add();
    record_request_event(p.id, RequestStage::kResponded,
                         static_cast<std::int32_t>(Status::kOk));
    p.promise.set_value(std::move(response));
  }
}

void InferenceEngine::note_group_success() {
  consecutive_failures_ = 0;
  const int level = degrade_level_.load(std::memory_order_relaxed);
  if (level == 0) {
    if (!stopping_.load(std::memory_order_relaxed)) {
      set_health(Health::kHealthy);
    }
    return;
  }
  // Half-open recovery probe: a long enough run of clean batches at the
  // degraded level earns one step back up the ladder. A failure at the
  // restored level trips the breaker again (and the probe run restarts).
  if (++consecutive_successes_ >= options_.breaker_recovery) {
    consecutive_successes_ = 0;
    recovered_steps_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.recovered").add();
    apply_degrade_level(level - 1);
  }
}

void InferenceEngine::note_group_failure() {
  consecutive_successes_ = 0;
  if (!stopping_.load(std::memory_order_relaxed)) {
    set_health(Health::kDegraded);
  }
  if (options_.breaker_threshold <= 0) return;
  const int level = degrade_level_.load(std::memory_order_relaxed);
  if (++consecutive_failures_ >= options_.breaker_threshold &&
      level + 1 < static_cast<int>(ladder_.size())) {
    consecutive_failures_ = 0;
    degraded_steps_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.degraded").add();
    apply_degrade_level(level + 1);
    // The breaker just tripped: snapshot the evidence (last spans, task
    // rows, request events, metrics) while it is still in the rings.
    // Dispatcher thread, mu_ not held.
    (void)trigger_dump("breaker-trip");
  }
}

void InferenceEngine::apply_degrade_level(int level) {
  BPAR_SPAN("serve.degrade");
  const auto& step = ladder_[static_cast<std::size_t>(level)];
  const auto& from =
      ladder_[static_cast<std::size_t>(degrade_level_.load())];
  BPAR_LOG_WARN << "serve: degradation ladder " << from.name << " -> "
                << step.name << " (level " << level << ")";
  if (step.scalar_backend) {
    (void)kernels::set_backend("scalar");
  } else if (from.scalar_backend && !native_backend_.empty()) {
    (void)kernels::set_backend(native_backend_);
  }
  degrade_level_.store(level, std::memory_order_relaxed);
  obs::Registry::instance().gauge("serve.degrade_level").set(
      static_cast<double>(level));
  if (!stopping_.load(std::memory_order_relaxed)) {
    set_health(level > 0 ? Health::kDegraded : Health::kHealthy);
  }
}

void InferenceEngine::rebuild_executor() {
  executor_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("serve.executor_rebuilds").add();
  BPAR_LOG_ERROR << "serve: runtime poisoned by an unrecovered watchdog "
                    "failure; rebuilding the executor";
  {
    // The traced program pointer aims into the executor being replaced.
    std::lock_guard<std::mutex> lock(trace_mu_);
    last_traced_program_ = nullptr;
  }
  if (fp32_executor_ != nullptr && fp32_executor_->runtime().poisoned()) {
    fp32_executor_.reset();
  }
  if (executor_->runtime().poisoned()) {
    executor_ = std::make_unique<exec::BParExecutor>(
        net_, exec::BParOptions{.common = options_.executor,
                                .record_trace = options_.record_trace,
                                .quantized_inference = options_.quantized,
                                .passes = options_.passes});
  }
}

void InferenceEngine::set_health(Health health) {
  const int value = static_cast<int>(health);
  const int previous = health_.exchange(value, std::memory_order_relaxed);
  if (previous == value) return;
  auto& registry = obs::Registry::instance();
  registry.gauge("serve.health").set(static_cast<double>(value));
  registry.counter("serve.health_transitions").add();
  BPAR_LOG_INFO << "serve: health "
                << health_name(static_cast<Health>(previous)) << " -> "
                << health_name(health);
}

void InferenceEngine::touch_progress() {
  last_progress_ns_.store(steady_ns(), std::memory_order_relaxed);
}

void InferenceEngine::watchdog_loop() {
  const auto period = std::chrono::milliseconds(
      std::max<std::uint32_t>(1, options_.watchdog_ms / 4));
  const auto deadline_ns =
      static_cast<std::uint64_t>(options_.watchdog_ms) * 1'000'000ULL;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, period);
    if (stopping_.load(std::memory_order_relaxed) &&
        total_queued_locked() == 0 &&
        !in_flight_.load(std::memory_order_relaxed)) {
      return;
    }
    const bool busy = in_flight_.load(std::memory_order_relaxed) ||
                      total_queued_locked() > 0;
    if (!busy) continue;
    const std::uint64_t idle =
        steady_ns() - last_progress_ns_.load(std::memory_order_relaxed);
    if (idle < deadline_ns) continue;

    // The dispatcher has work but made no progress for a full watchdog
    // period. The only recoverable cause we can act on from here is an
    // injected stall the runtime watchdog is not armed to catch: release
    // it so the blocked infer() completes. Everything else just gets
    // counted and logged loudly.
    watchdog_fires_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.watchdog_fires").add();
    if (!stopping_.load(std::memory_order_relaxed)) {
      set_health(Health::kDegraded);
    }
    BPAR_LOG_ERROR << "serve: engine watchdog fired after "
                   << options_.watchdog_ms
                   << " ms without dispatcher progress (queued="
                   << total_queued_locked() << ", in_flight="
                   << in_flight_.load(std::memory_order_relaxed)
                   << "); releasing injected stalls";
    lock.unlock();
    if (auto* injector = executor_->runtime().fault_injector()) {
      injector->release_stalls();
    }
    if (fp32_executor_ != nullptr) {
      if (auto* injector = fp32_executor_->runtime().fault_injector()) {
        injector->release_stalls();
      }
    }
    // mu_ is released here, so the dump's statz snapshot cannot deadlock
    // against the stalled dispatcher.
    (void)trigger_dump("engine-watchdog");
    touch_progress();  // rate-limit: one fire per silent period
    lock.lock();
  }
}

void InferenceEngine::record_request_event(std::uint64_t id,
                                           RequestStage stage,
                                           std::int32_t arg) {
  if (!options_.trace_requests) return;
  RequestEvent event;
  event.id = id;
  event.ts_ns = steady_ns();
  event.stage = stage;
  event.arg = arg;
  const std::lock_guard<std::mutex> lock(req_mu_);
  while (request_events_.size() >= kMaxRequestEvents) {
    request_events_.pop_front();
    ++request_events_dropped_;
  }
  request_events_.push_back(event);
}

void InferenceEngine::record_slo(Status status, double latency_us) {
  switch (status) {
    case Status::kOk:
      slo_.record(true, latency_us);
      break;
    case Status::kShed:
    case Status::kDeadlineExceeded:
    case Status::kInternalError:
      slo_.record(false, 0.0);
      break;
    case Status::kRejected:
    case Status::kShutdown:
    case Status::kFailed:
      break;  // not SLO-eligible
  }
}

void InferenceEngine::publish_queue_depths_locked() {
  auto& registry = obs::Registry::instance();
  registry.gauge("serve.queue_depth")
      .set(static_cast<double>(total_queued_locked()));
  for (int cls = 0; cls < kNumPriorities; ++cls) {
    registry
        .gauge(std::string("serve.queue_depth.") +
               priority_name(static_cast<Priority>(cls)))
        .set(static_cast<double>(
            queues_[static_cast<std::size_t>(cls)].size()));
  }
}

std::vector<RequestEvent> InferenceEngine::request_events() const {
  const std::lock_guard<std::mutex> lock(req_mu_);
  return {request_events_.begin(), request_events_.end()};
}

std::uint64_t InferenceEngine::request_events_dropped() const {
  const std::lock_guard<std::mutex> lock(req_mu_);
  return request_events_dropped_;
}

int InferenceEngine::stats_port() const {
  return stats_server_ != nullptr ? stats_server_->port() : -1;
}

std::string InferenceEngine::statz_json() const {
  const EngineStats s = stats();
  const double uptime_s =
      std::chrono::duration<double>(Clock::now() - started_).count();
  std::string out = "{\"type\": \"statz\", \"schema_version\": 1";
  out += ", \"uptime_s\": " + obs::json_number(uptime_s);

  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  out += ", \"engine\": {";
  out += "\"submitted\": " + u64(s.submitted);
  out += ", \"completed\": " + u64(s.completed);
  out += ", \"rejected\": " + u64(s.rejected);
  out += ", \"shed\": " + u64(s.shed);
  out += ", \"expired\": " + u64(s.expired);
  out += ", \"failed\": " + u64(s.failed);
  out += ", \"internal_errors\": " + u64(s.internal_errors);
  out += ", \"batches\": " + u64(s.batches);
  out += ", \"padded_rows\": " + u64(s.padded_rows);
  out += ", \"retries\": " + u64(s.retries);
  out += ", \"bisections\": " + u64(s.bisections);
  out += ", \"degraded_steps\": " + u64(s.degraded_steps);
  out += ", \"recovered_steps\": " + u64(s.recovered_steps);
  out += ", \"watchdog_fires\": " + u64(s.watchdog_fires);
  out += ", \"executor_rebuilds\": " + u64(s.executor_rebuilds);
  out += ", \"degrade_level\": " + std::to_string(s.degrade_level);
  out += ", \"health\": " + obs::json_quote(health_name(s.health));
  out += ", \"queue_depth\": {\"total\": " + u64(s.queue_depth);
  for (int cls = 0; cls < kNumPriorities; ++cls) {
    out += std::string(", \"") +
           priority_name(static_cast<Priority>(cls)) + "\": " +
           u64(s.queue_depths[static_cast<std::size_t>(cls)]);
  }
  out += "}}";

  out += ", \"slo\": {";
  out += "\"eligible\": " + u64(s.slo.eligible);
  out += ", \"errors\": " + u64(s.slo.errors);
  out += ", \"latency_misses\": " + u64(s.slo.latency_misses);
  out += ", \"availability\": " + obs::json_number(s.slo.availability);
  out += ", \"latency_attainment\": " +
         obs::json_number(s.slo.latency_attainment);
  out += ", \"budget_consumed\": " + obs::json_number(s.slo.budget_consumed);
  out += ", \"burn_short\": " + obs::json_number(s.slo.burn_short);
  out += ", \"burn_long\": " + obs::json_number(s.slo.burn_long);
  out += std::string(", \"alerting\": ") +
         (s.slo.alerting ? "true" : "false");
  out += ", \"availability_objective\": " +
         obs::json_number(slo_.options().availability_objective);
  out += ", \"latency_target_us\": " +
         obs::json_number(slo_.options().latency_target_us);
  out += "}";

  // Memory observability (DESIGN.md §5j): subsystem trackers + a fresh
  // /proc/self sample, so bpar_top and dump bundles see where the heap is.
  const auto tracker_json = [&u64](const char* name,
                                   const obs::MemTracker& t) {
    std::string block = std::string("\"") + name + "\": {";
    block += "\"bytes\": " + u64(t.current_bytes());
    block += ", \"peak_bytes\": " + u64(t.peak_bytes());
    block += ", \"total_bytes\": " + u64(t.total_bytes());
    block += ", \"allocs\": " + u64(t.allocs());
    block += ", \"frees\": " + u64(t.frees());
    block += "}";
    return block;
  };
  out += ", \"memory\": {";
  out += tracker_json("tensor", obs::tensor_memory());
  out += ", " + tracker_json("program_cache", obs::program_cache_memory());
  out += ", " + tracker_json("serve_queue", obs::serve_queue_memory());
  if (const obs::ProcSelfStats proc = obs::read_proc_self(); proc.valid) {
    out += ", \"proc\": {\"rss_bytes\": " + obs::json_number(proc.rss_bytes);
    out += ", \"vm_bytes\": " + obs::json_number(proc.vm_bytes);
    out += ", \"minor_faults\": " + obs::json_number(proc.minor_faults);
    out += ", \"major_faults\": " + obs::json_number(proc.major_faults);
    out += ", \"threads\": " + obs::json_number(proc.threads);
    out += ", \"ctx_voluntary\": " + obs::json_number(proc.ctx_voluntary);
    out += ", \"ctx_involuntary\": " +
           obs::json_number(proc.ctx_involuntary);
    out += "}";
  } else {
    out += ", \"proc\": null";
  }
  out += "}";

  if (flight_ != nullptr) {
    out += ", \"flight\": {\"dumps\": " + u64(flight_->dumps());
    out += ", \"suppressed\": " + u64(flight_->suppressed());
    out += ", \"dir\": " + obs::json_quote(flight_->options().dir);
    out += "}";
  } else {
    out += ", \"flight\": null";
  }
  if (profiler_ != nullptr) {
    out += ", \"profiler\": {\"samples\": " + u64(profiler_->samples());
    out += ", \"sweeps\": " + u64(profiler_->sweeps());
    out += ", \"torn\": " + u64(profiler_->torn());
    out += ", \"truncations\": " + u64(obs::span_stack_truncations());
    out += "}";
  } else {
    out += ", \"profiler\": null";
  }

  if (sampler_ != nullptr) {
    constexpr double kWindowS = 10.0;
    out += ", \"sampler\": {\"period_ms\": " +
           std::to_string(sampler_->period_ms());
    out += ", \"samples\": " + std::to_string(sampler_->samples());
    out += ", \"ticks\": " + u64(sampler_->ticks());
    out += ", \"window_s\": " + obs::json_number(kWindowS);
    out += ", \"windows\": {\"counters\": {";
    bool first = true;
    for (const std::string& name : sampler_->counter_names()) {
      if (name.rfind("serve.", 0) != 0) continue;
      const auto window = sampler_->counter_window(name, kWindowS);
      if (!window.valid) continue;
      if (!first) out += ", ";
      first = false;
      out += obs::json_quote(name) + ": {\"rate_per_s\": " +
             obs::json_number(window.rate_per_s) +
             ", \"delta\": " + obs::json_number(window.delta) +
             ", \"seconds\": " + obs::json_number(window.seconds) + "}";
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const std::string& name : sampler_->histogram_names()) {
      if (name.rfind("serve.", 0) != 0) continue;
      const auto window = sampler_->histogram_window(name, kWindowS);
      if (!window.valid) continue;
      if (!first) out += ", ";
      first = false;
      out += obs::json_quote(name) + ": {\"count\": " +
             obs::json_number(window.count) +
             ", \"mean\": " + obs::json_number(window.mean) +
             ", \"p50\": " + obs::json_number(window.p50) +
             ", \"p95\": " + obs::json_number(window.p95) +
             ", \"p99\": " + obs::json_number(window.p99) + "}";
    }
    out += "}}}";
  } else {
    out += ", \"sampler\": null";
  }

  out += ", \"metrics\": " +
         obs::metrics_json(obs::Registry::instance().snapshot());
  out += "}";
  return out;
}

EngineStats InferenceEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.padded_rows = padded_rows_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.bisections = bisections_.load(std::memory_order_relaxed);
  s.degraded_steps = degraded_steps_.load(std::memory_order_relaxed);
  s.recovered_steps = recovered_steps_.load(std::memory_order_relaxed);
  s.watchdog_fires = watchdog_fires_.load(std::memory_order_relaxed);
  s.executor_rebuilds = executor_rebuilds_.load(std::memory_order_relaxed);
  s.degrade_level = degrade_level_.load(std::memory_order_relaxed);
  s.health = health();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int cls = 0; cls < kNumPriorities; ++cls) {
      s.queue_depths[static_cast<std::size_t>(cls)] =
          queues_[static_cast<std::size_t>(cls)].size();
    }
    s.queue_depth = total_queued_locked();
  }
  s.slo = slo_.snapshot();
  return s;
}

Health InferenceEngine::health() const {
  return static_cast<Health>(health_.load(std::memory_order_relaxed));
}

obs::ExtraEventEmitter InferenceEngine::request_marker_emitter() const {
  // Request stage markers ride along as instants on their own row (tid 99,
  // below the worker rows, beside the obs ring rows at 100+): one
  // "req.<stage>" marker per event with {req, arg[, status]} args so
  // `bpar_prof request <id>` can rebuild any request's timeline. Events
  // are captured by value: the emitter must stay valid after this returns.
  return [events = request_events()](obs::ChromeTraceWriter& writer,
                                     std::uint64_t base_ns) {
    constexpr int kPid = 1;
    constexpr int kRequestTid = 99;
    if (events.empty()) return;
    writer.thread_name(kPid, kRequestTid, "requests");
    for (const RequestEvent& event : events) {
      const std::uint64_t ts =
          event.ts_ns > base_ns ? event.ts_ns - base_ns : 0;
      std::string args = "{\"req\": " + std::to_string(event.id) +
                         ", \"arg\": " + std::to_string(event.arg);
      if (event.stage == RequestStage::kResponded) {
        args += ", \"status\": " +
                obs::json_quote(status_name(
                    static_cast<Status>(event.arg)));
      }
      args += "}";
      writer.instant_args(
          std::string("req.") + request_stage_name(event.stage), ts, kPid,
          kRequestTid, args);
    }
  };
}

void InferenceEngine::write_unified_trace(const std::string& path) {
  BPAR_CHECK(options_.record_trace,
             "write_unified_trace requires EngineOptions::record_trace");
  const obs::ExtraEventEmitter emit_requests = request_marker_emitter();
  std::lock_guard<std::mutex> lock(trace_mu_);
  BPAR_CHECK(last_traced_program_ != nullptr,
             "no cached-path micro-batch has been served yet");
  taskrt::write_unified_trace_file(last_traced_program_->graph(),
                                   last_traced_stats_, path, emit_requests);
}

bool InferenceEngine::write_flight_trace(std::ostream& os) {
  const obs::ExtraEventEmitter emit_requests = request_marker_emitter();
  std::lock_guard<std::mutex> lock(trace_mu_);
  if (last_traced_program_ != nullptr) {
    // Full bundle: the last traced micro-batch's task slices (the rows
    // `bpar_prof analyze` needs) + spans + request markers.
    taskrt::write_unified_trace(last_traced_program_->graph(),
                                last_traced_stats_, os, emit_requests);
  } else {
    // No traced batch (record_trace off, or nothing served yet): spans and
    // request markers still make a timeline Perfetto opens.
    obs::write_trace_json(os, emit_requests);
  }
  return true;
}

obs::DumpResult InferenceEngine::trigger_dump(std::string_view reason) {
  if (flight_ == nullptr) {
    obs::DumpResult result;
    result.reason = std::string(reason);
    result.skipped = "no flight recorder (EngineOptions::dump_dir empty)";
    return result;
  }
  return flight_->trigger(reason);
}

void InferenceEngine::check_slo_alert() {
  if (flight_ == nullptr) return;
  // Rising edge only: a sustained alert is one incident, not one dump per
  // batch (the debounce would eat most of them anyway, but edge detection
  // keeps suppressed() meaningful).
  const bool alerting = slo_.snapshot().alerting;
  if (alerting && !slo_alerting_prev_) (void)trigger_dump("slo-alert");
  slo_alerting_prev_ = alerting;
}

std::string InferenceEngine::profile_folded(double seconds) {
  const auto window = std::chrono::duration<double>(seconds);
  if (profiler_ != nullptr) {
    // Continuous profiler: a windowed delta of its running aggregates.
    const std::vector<obs::SpanProfiler::Fold> before = profiler_->folded();
    std::this_thread::sleep_for(window);
    return obs::folded_to_text(obs::fold_delta(before, profiler_->folded()));
  }
  // No continuous profiler: spin one up just for the window.
  obs::ProfilerOptions po;
  po.period_us =
      options_.profiler_period_us != 0 ? options_.profiler_period_us : 2000;
  obs::SpanProfiler ephemeral(po);
  ephemeral.start();
  std::this_thread::sleep_for(window);
  ephemeral.stop();
  return ephemeral.folded_text();
}

std::uint64_t InferenceEngine::pending_bytes(const Pending& pending) {
  return static_cast<std::uint64_t>(sizeof(Pending)) +
         pending.request.features.size() * sizeof(float) +
         pending.request.labels.size() * sizeof(int);
}

std::size_t InferenceEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued_locked();
}

}  // namespace bpar::serve
