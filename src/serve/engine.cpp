#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "taskrt/export.hpp"
#include "util/check.hpp"

namespace bpar::serve {

namespace {

constexpr std::chrono::steady_clock::time_point kNoDeadline{};

/// Shared microsecond-scale latency edges for the serve.* histograms.
std::vector<double> latency_edges_us() {
  return {50,    100,   200,    500,    1000,   2000,    5000,
          10000, 20000, 50000, 100000, 200000, 500000, 1000000};
}

obs::HistogramCell& queue_histogram() {
  static obs::HistogramCell& cell =
      obs::Registry::instance().histogram("serve.queue_us",
                                          latency_edges_us());
  return cell;
}

obs::HistogramCell& form_histogram() {
  static obs::HistogramCell& cell = obs::Registry::instance().histogram(
      "serve.batch_form_us", latency_edges_us());
  return cell;
}

obs::HistogramCell& exec_histogram() {
  static obs::HistogramCell& cell =
      obs::Registry::instance().histogram("serve.exec_us",
                                          latency_edges_us());
  return cell;
}

obs::HistogramCell& batch_rows_histogram() {
  static obs::HistogramCell& cell = obs::Registry::instance().histogram(
      "serve.batch_rows", {1.5, 2.5, 4.5, 8.5, 16.5, 32.5, 64.5});
  return cell;
}

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Numerically stable log(sum(exp(logits))).
double logsumexp(std::span<const float> logits) {
  double hi = logits[0];
  for (const float v : logits) hi = std::max(hi, static_cast<double>(v));
  double sum = 0.0;
  for (const float v : logits) sum += std::exp(static_cast<double>(v) - hi);
  return hi + std::log(sum);
}

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kRejected:
      return "rejected";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kShutdown:
      return "shutdown";
    case Status::kFailed:
      return "failed";
  }
  return "unknown";
}

int InferenceEngine::bucket_rows(int rows, int max_batch) {
  BPAR_CHECK(rows >= 1, "empty micro-batch");
  int bucket = 1;
  while (bucket < rows) bucket *= 2;
  return std::min(bucket, std::max(rows, max_batch));
}

InferenceEngine::InferenceEngine(const rnn::NetworkConfig& config,
                                 EngineOptions options)
    : net_(config),
      options_(options),
      executor_(net_,
                exec::BParOptions{.common = options.executor,
                                  .record_trace = options.record_trace,
                                  .quantized_inference = options.quantized}),
      started_(Clock::now()) {
  BPAR_CHECK(options_.max_batch >= 1, "max_batch must be >= 1");
  BPAR_CHECK(options_.max_queue >= 1, "max_queue must be >= 1");
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

InferenceEngine::~InferenceEngine() { shutdown(); }

void InferenceEngine::load_weights(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BPAR_CHECK(in.good(), "cannot open ", path);
  net_.load(in);
  executor_.refresh_quantized_weights();
}

void InferenceEngine::warmup(std::span<const int> seq_lengths) {
  BPAR_SPAN("serve.warmup");
  for (const int steps : seq_lengths) {
    for (int rows = 1; rows <= options_.max_batch; rows *= 2) {
      (void)executor_.infer_program(steps, rows);
    }
    if (!options_.enable_batching) {
      (void)executor_.infer_program(steps, 1);
    }
  }
}

std::string InferenceEngine::validate(const Request& request) const {
  const auto& cfg = net_.config();
  if (request.steps < 1) return "request has no timesteps";
  const auto want = static_cast<std::size_t>(request.steps) *
                    static_cast<std::size_t>(cfg.input_size);
  if (request.features.size() != want) {
    return "feature count " + std::to_string(request.features.size()) +
           " != steps*input_size = " + std::to_string(want);
  }
  const std::size_t outputs =
      cfg.many_to_many ? static_cast<std::size_t>(request.steps) : 1U;
  if (!request.labels.empty() && request.labels.size() != outputs) {
    return "label count " + std::to_string(request.labels.size()) +
           " != outputs = " + std::to_string(outputs);
  }
  for (const int label : request.labels) {
    if (label < 0 || label >= cfg.num_classes) return "label out of range";
  }
  return {};
}

std::future<Response> InferenceEngine::submit(Request request) {
  BPAR_SPAN("serve.submit");
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  const std::uint64_t id =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("serve.requests").add();

  Response immediate;
  immediate.id = id;
  if (std::string error = validate(request); !error.empty()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.failed").add();
    immediate.status = Status::kFailed;
    immediate.error = std::move(error);
    promise.set_value(std::move(immediate));
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      immediate.status = Status::kShutdown;
    } else if (queue_.size() >= options_.max_queue) {
      immediate.status = Status::kRejected;
    } else {
      Pending pending;
      pending.request = std::move(request);
      pending.promise = std::move(promise);
      pending.enqueued = Clock::now();
      pending.id = id;
      queue_.push_back(std::move(pending));
      obs::Registry::instance().gauge("serve.queue_depth").set(
          static_cast<double>(queue_.size()));
      cv_.notify_all();
      return future;
    }
  }
  if (immediate.status == Status::kRejected) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.rejected").add();
  }
  promise.set_value(std::move(immediate));
  return future;
}

Response InferenceEngine::infer(Request request) {
  return submit(std::move(request)).get();
}

void InferenceEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void InferenceEngine::dispatcher_loop() {
  const int cap = options_.enable_batching ? options_.max_batch : 1;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ && drained

    // The head request defines the micro-batch's shape group: BRNN outputs
    // depend on the whole sequence, so only requests with the SAME length
    // coalesce (the batch dimension pads; timesteps never do).
    const int steps = queue_.front().request.steps;
    const Clock::time_point flush_at =
        queue_.front().enqueued +
        std::chrono::microseconds(options_.max_delay_us);
    const auto matching = [&] {
      std::size_t m = 0;
      for (const Pending& p : queue_) m += (p.request.steps == steps) ? 1 : 0;
      return m;
    };
    while (!stopping_ && matching() < static_cast<std::size_t>(cap) &&
           Clock::now() < flush_at) {
      cv_.wait_until(lock, flush_at);
    }

    // Seal: extract up to `cap` same-length requests in FIFO order.
    const Clock::time_point sealed = Clock::now();
    std::vector<Pending> taken;
    taken.reserve(static_cast<std::size_t>(cap));
    for (auto it = queue_.begin();
         it != queue_.end() && taken.size() < static_cast<std::size_t>(cap);) {
      if (it->request.steps == steps) {
        taken.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    obs::Registry::instance().gauge("serve.queue_depth").set(
        static_cast<double>(queue_.size()));

    lock.unlock();
    process_batch(std::move(taken), sealed);
    lock.lock();
  }
}

void InferenceEngine::process_batch(std::vector<Pending> taken,
                                    Clock::time_point sealed) {
  BPAR_SPAN("serve.batch");
  auto& registry = obs::Registry::instance();

  // Expired requests answer without executing.
  std::vector<Pending> live;
  live.reserve(taken.size());
  for (Pending& p : taken) {
    if (p.request.deadline != kNoDeadline && sealed > p.request.deadline) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("serve.deadline_exceeded").add();
      Response response;
      response.id = p.id;
      response.status = Status::kDeadlineExceeded;
      response.queue_us = us_between(p.enqueued, sealed);
      p.promise.set_value(std::move(response));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  const auto& cfg = net_.config();
  const int real_rows = static_cast<int>(live.size());
  const int rows = options_.enable_batching
                       ? bucket_rows(real_rows, options_.max_batch)
                       : real_rows;
  const int steps = live.front().request.steps;
  const int outputs = cfg.many_to_many ? steps : 1;
  bool need_logits = false;
  for (const Pending& p : live) {
    need_logits |= p.request.want_logits || !p.request.labels.empty();
  }

  // Form the padded batch. Matrix buffers are zero-initialized, so padding
  // rows are all-zero inputs with label 0; their outputs are never read.
  rnn::BatchData batch;
  batch.x.resize(static_cast<std::size_t>(steps));
  for (auto& m : batch.x) m.resize(rows, cfg.input_size);
  batch.labels.assign(static_cast<std::size_t>(outputs) *
                          static_cast<std::size_t>(rows),
                      0);
  for (int r = 0; r < real_rows; ++r) {
    const Request& request = live[static_cast<std::size_t>(r)].request;
    for (int t = 0; t < steps; ++t) {
      const auto row = batch.x[static_cast<std::size_t>(t)].view().row(r);
      std::copy_n(request.features.data() +
                      static_cast<std::size_t>(t) * cfg.input_size,
                  static_cast<std::size_t>(cfg.input_size), row.begin());
    }
    for (std::size_t t = 0; t < request.labels.size(); ++t) {
      batch.labels[t * static_cast<std::size_t>(rows) +
                   static_cast<std::size_t>(r)] = request.labels[t];
    }
  }
  const Clock::time_point formed = Clock::now();

  exec::InferResult result;
  std::string error;
  try {
    if (options_.rebuild_per_call) {
      // Benchmark mode: pay graph construction on every batch.
      exec::BParExecutor fresh(
          net_, exec::BParOptions{.common = options_.executor,
                                  .quantized_inference = options_.quantized});
      result = fresh.infer(batch, {.want_logits = need_logits});
    } else {
      result = executor_.infer(batch, {.want_logits = need_logits});
      if (options_.record_trace) {
        std::lock_guard<std::mutex> lock(trace_mu_);
        last_traced_program_ = &executor_.infer_program(steps, rows);
        last_traced_stats_ = result.stats;
      }
    }
  } catch (const std::exception& e) {
    error = e.what();
  }
  const Clock::time_point done = Clock::now();

  const double form_us = us_between(sealed, formed);
  const double exec_us = us_between(formed, done);
  batches_.fetch_add(1, std::memory_order_relaxed);
  padded_rows_.fetch_add(static_cast<std::uint64_t>(rows - real_rows),
                         std::memory_order_relaxed);
  registry.counter("serve.batches").add();
  registry.counter("serve.padded_rows")
      .add(static_cast<std::uint64_t>(rows - real_rows));
  form_histogram().add(form_us);
  exec_histogram().add(exec_us);
  batch_rows_histogram().add(static_cast<double>(real_rows));

  for (int r = 0; r < real_rows; ++r) {
    Pending& p = live[static_cast<std::size_t>(r)];
    Response response;
    response.id = p.id;
    response.batch_rows = rows;
    response.real_rows = real_rows;
    response.queue_us = us_between(p.enqueued, sealed);
    response.batch_form_us = form_us;
    response.exec_us = exec_us;
    if (!error.empty()) {
      response.status = Status::kFailed;
      response.error = error;
      failed_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("serve.failed").add();
      p.promise.set_value(std::move(response));
      continue;
    }
    response.predictions.resize(static_cast<std::size_t>(outputs));
    for (int t = 0; t < outputs; ++t) {
      response.predictions[static_cast<std::size_t>(t)] =
          result.prediction(t, r);
    }
    if (p.request.want_logits) {
      response.logits.reserve(static_cast<std::size_t>(outputs) *
                              static_cast<std::size_t>(cfg.num_classes));
      for (int t = 0; t < outputs; ++t) {
        const auto row = result.logits_row(t, r);
        response.logits.insert(response.logits.end(), row.begin(), row.end());
      }
    }
    if (!p.request.labels.empty()) {
      // Exact per-request loss from this row's logits — the batch-mean loss
      // would smear padding and neighbours into it.
      double loss = 0.0;
      for (int t = 0; t < outputs; ++t) {
        const auto row = result.logits_row(t, r);
        const int label = p.request.labels[static_cast<std::size_t>(t)];
        loss += logsumexp(row) - static_cast<double>(row[
            static_cast<std::size_t>(label)]);
      }
      response.loss = loss / outputs;
    }
    queue_histogram().add(response.queue_us);
    completed_.fetch_add(1, std::memory_order_relaxed);
    registry.counter("serve.completed").add();
    p.promise.set_value(std::move(response));
  }

  const double elapsed_s =
      std::chrono::duration<double>(done - started_).count();
  if (elapsed_s > 0.0) {
    registry.gauge("serve.throughput_rps")
        .set(static_cast<double>(completed_.load(std::memory_order_relaxed)) /
             elapsed_s);
  }
}

InferenceEngine::Stats InferenceEngine::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.padded_rows = padded_rows_.load(std::memory_order_relaxed);
  return s;
}

void InferenceEngine::write_unified_trace(const std::string& path) {
  BPAR_CHECK(options_.record_trace,
             "write_unified_trace requires EngineOptions::record_trace");
  std::lock_guard<std::mutex> lock(trace_mu_);
  BPAR_CHECK(last_traced_program_ != nullptr,
             "no cached-path micro-batch has been served yet");
  taskrt::write_unified_trace_file(last_traced_program_->graph(),
                                   last_traced_stats_, path);
}

std::size_t InferenceEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace bpar::serve
