// Closed-loop load generator for the inference serving engine.
//
// N client threads each issue requests back-to-back (a new request the
// moment the previous response lands — the classic closed-loop model), so
// offered load scales with the client count and the engine's dynamic
// micro-batcher sees realistic concurrency. Used by tools/bpar_serve, the
// bench/fig_serving sweep, and the serving tests.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/engine.hpp"
#include "util/percentiles.hpp"

namespace bpar::serve {

struct LoadgenOptions {
  int clients = 8;               // concurrent closed-loop client threads
  int requests_per_client = 50;  // requests each client issues
  /// Sequence lengths cycled per client (request i uses
  /// seq_lengths[i % size]); one entry → a single shape bucket.
  std::vector<int> seq_lengths = {20};
  bool with_labels = true;  // attach labels so responses carry losses
  std::uint64_t seed = 1;   // feature/label generator seed
};

struct LoadgenResult {
  util::Percentiles latency_ms;      // per-request client-observed latency
  double wall_s = 0.0;               // whole-run wall time
  double throughput_rps = 0.0;       // ok_responses / wall_s
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::vector<double> latencies_ms;  // raw samples (ok responses only)
};

/// Runs the closed loop against `engine` and gathers latency percentiles.
/// Thread-safe with respect to the engine; does not shut it down.
[[nodiscard]] LoadgenResult run_load(InferenceEngine& engine,
                                     const LoadgenOptions& options);

/// Deterministic random request for the engine's model shape.
[[nodiscard]] Request make_request(const rnn::NetworkConfig& config,
                                   int steps, std::uint64_t seed,
                                   bool with_labels);

}  // namespace bpar::serve
