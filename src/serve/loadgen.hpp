// Load generators for the inference serving engine.
//
// Two traffic models (DESIGN.md §5h):
//
//   Closed loop (rate_rps == 0): N client threads each issue requests
//   back-to-back — a new request the moment the previous response lands —
//   so offered load scales with the client count and self-throttles when
//   the engine slows down. Good for throughput ceilings, useless for
//   studying overload (the clients politely back off).
//
//   Open loop (rate_rps > 0): each client submits on a Poisson arrival
//   process at rate_rps/clients and does NOT wait for responses before the
//   next arrival — outstanding futures are reaped by polling between
//   arrivals. Offered load is fixed regardless of engine state, which is
//   the only honest way to exercise load shedding and admission control:
//   a drowning server keeps receiving requests.
//
// Both models record a per-Status latency breakdown (client-observed, from
// submit to response delivery) so shed/rejected/expired outcomes are
// visible separately from served ones. Used by tools/bpar_serve, the
// bench/fig_serving sweeps, and the serving tests.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "serve/engine.hpp"
#include "util/percentiles.hpp"

namespace bpar::serve {

struct LoadgenOptions {
  int clients = 8;               // concurrent client threads
  int requests_per_client = 50;  // requests each client issues
  /// Sequence lengths cycled per client (request i uses
  /// seq_lengths[i % size]); one entry → a single shape bucket.
  std::vector<int> seq_lengths = {20};
  bool with_labels = true;  // attach labels so responses carry losses
  std::uint64_t seed = 1;   // feature/label generator seed
  /// 0 → closed loop. > 0 → open loop: total offered load in requests/s,
  /// split evenly across clients as independent Poisson processes.
  double rate_rps = 0.0;
  /// Priority classes cycled per request (request i uses
  /// priorities[i % size]); default all-kNormal.
  std::vector<Priority> priorities = {Priority::kNormal};
  /// Per-request relative deadline; 0 → no deadline.
  std::uint32_t deadline_us = 0;
};

struct LoadgenResult {
  util::Percentiles latency_ms;      // kOk client-observed latency
  double wall_s = 0.0;               // whole-run wall time
  double offered_rps = 0.0;          // submitted / wall_s
  double throughput_rps = 0.0;       // ok_responses / wall_s
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;  // kShutdown + kFailed + kInternalError
  /// Full per-Status breakdown, indexed by static_cast<int>(Status):
  /// counts and client-observed latency percentiles per terminal status.
  std::array<std::uint64_t, kNumStatuses> by_status{};
  std::array<util::Percentiles, kNumStatuses> latency_by_status{};
  std::vector<double> latencies_ms;  // raw samples (ok responses only)
};

/// Runs the configured traffic model against `engine` and gathers latency
/// percentiles. Thread-safe w.r.t. the engine; does not shut it down.
[[nodiscard]] LoadgenResult run_load(InferenceEngine& engine,
                                     const LoadgenOptions& options);

/// Deterministic random request for the engine's model shape.
[[nodiscard]] Request make_request(const rnn::NetworkConfig& config,
                                   int steps, std::uint64_t seed,
                                   bool with_labels);

}  // namespace bpar::serve
