// Inference serving engine: concurrent clients, dynamic micro-batching,
// cached forward-only task graphs, and a resilience layer (DESIGN.md §5f +
// §5h).
//
// An InferenceEngine owns a trained rnn::Network and a BParExecutor whose
// per-(seq_length, batch_rows) program cache turns every repeated request
// shape into a prebuilt task-graph replay — no graph construction on the
// hot path. Clients submit single-sequence requests from any thread; a
// single dispatcher thread coalesces them into micro-batches (up to
// `max_batch`, or whatever arrived when the head request has waited
// `max_delay_us`), pads the batch up to a power-of-two row bucket so the
// cache stays small, and masks the padded rows out of every per-request
// result (argmax, logits, loss — per-request losses are recomputed from the
// request's own logits, so padding never pollutes them).
//
// Admission control (DESIGN.md §5h): every request carries a Priority
// class. The bounded queue is per-class FIFO with strict priority across
// classes (kHigh is always sealed first), per-class quotas cap how much of
// `max_queue` a class may occupy, and queue-delay load shedding answers
// overdue kNormal/kBatch requests with kShed when the backlog exceeds one
// micro-batch — overload lands on the lowest classes while kHigh latency
// stays flat. Already-expired deadlines are rejected at submit() so dead
// requests never consume a queue slot.
//
// Fault-hardened execution: EngineOptions::executor.faults/watchdog_ms flow
// into the executor's runtime (the PR-2 fault stack), and infer() is
// wrapped in a recovery loop: InjectedFault / WatchdogError / non-finite
// outputs trigger bounded whole-batch retries (fault schedules decorrelate
// across runtime sessions), then bisection — the batch splits in half until
// a deterministically poisoned request is isolated and answered
// kInternalError while its batchmates succeed bit-exactly. A poisoned
// runtime (watchdog fired and the graph never drained) is replaced by
// rebuilding the executor.
//
// Graceful degradation: a circuit breaker counts consecutive failed
// batches and steps down a degradation ladder (int8 → fp32 sidecar off,
// native kernels → scalar, batched → batch-1), then probes half-open
// recovery after a run of successes. An engine watchdog thread releases
// injected stalls when the dispatcher stops making progress, and a
// healthy / degraded / draining health state machine is exposed through
// EngineStats and the serve.* obs metrics.
//
// Observability: per-stage latency histograms (serve.queue_us /
// serve.batch_form_us / serve.exec_us), request/batch/shed/retry counters,
// health + degrade-level gauges, and BPAR_SPAN tracing on the submit,
// batch, retry, and bisect paths, so `bpar_prof analyze` attributes
// retry/shed time on serving runs unchanged.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "exec/bpar_executor.hpp"
#include "exec/common_options.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/slo.hpp"
#include "obs/stats_server.hpp"
#include "obs/trace_export.hpp"
#include "rnn/network.hpp"

namespace bpar::serve {

/// Request priority classes for admission control. Lower value = served
/// first. kHigh is never shed; kBatch is shed first under overload.
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kBatch = 2 };
inline constexpr int kNumPriorities = 3;

[[nodiscard]] const char* priority_name(Priority priority);
/// Parses "high" / "normal" / "batch" (throws util::Error otherwise).
[[nodiscard]] Priority parse_priority(std::string_view name);

struct EngineOptions {
  /// Workers / replicas / policy for the owned BParExecutor — including
  /// `faults` (deterministic fault injection) and `watchdog_ms` (runtime
  /// no-progress watchdog), which flow into the runtime unchanged: the
  /// serving engine inherits the PR-2 fault stack through here.
  exec::CommonOptions executor{};
  /// Largest micro-batch the dispatcher coalesces (and the top row bucket).
  int max_batch = 8;
  /// Flush deadline: a formed batch executes as soon as it reaches
  /// max_batch OR the oldest queued request has waited this long.
  std::uint32_t max_delay_us = 500;
  /// Bounded queue (all classes together); submissions beyond it reject
  /// with kRejected.
  std::size_t max_queue = 256;
  /// false → every request executes alone (batch-1 latency mode).
  bool enable_batching = true;
  /// Benchmark knob: build a fresh executor (and thus fresh task graphs)
  /// for every micro-batch instead of replaying the cached programs. Only
  /// for measuring what the cache buys (tools/bpar_serve --rebuild).
  bool rebuild_per_call = false;
  /// Record per-task timing in the executor so write_unified_trace() can
  /// export an analyzable trace (`bpar_prof analyze`) of the last batch.
  bool record_trace = false;
  /// int8 inference (DESIGN.md §5g): serve with quantized weights.
  /// load_weights() re-quantizes automatically.
  bool quantized = false;
  /// Graph-optimizer pass spec forwarded to the executor ("default"
  /// resolves BPAR_GRAPH_PASSES; "none" serves unoptimized graphs).
  std::string passes = "default";

  // ---- resilience (DESIGN.md §5h) ----
  /// Per-class queue quotas, indexed by Priority: how many of the
  /// max_queue slots each class may occupy. 0 → no class-specific cap
  /// (the shared max_queue still applies).
  std::array<std::size_t, kNumPriorities> class_quota{};
  /// Queue-delay load shedding: when the backlog exceeds one micro-batch
  /// (max_batch) AND a kNormal/kBatch request has waited longer than this,
  /// it is answered kShed instead of executing, lowest class first. kHigh
  /// is never shed. 0 → 16 * max_delay_us.
  std::uint32_t shed_wait_us = 0;
  /// Whole-batch retries after a fault (injected throw, watchdog error,
  /// non-finite outputs) before bisection isolates the poisoned request.
  int max_batch_retries = 2;
  /// Circuit breaker: consecutive failed batches (retries exhausted) that
  /// trip one step down the degradation ladder. 0 disables the breaker.
  int breaker_threshold = 3;
  /// Consecutive successful batches at a degraded level before the
  /// breaker probes one step back up (half-open recovery).
  int breaker_recovery = 16;
  /// Engine watchdog: if the dispatcher makes no progress for this long
  /// while work is pending, injected stalls are released and the fire is
  /// counted/logged (the backstop when the runtime watchdog is off).
  /// 0 → disabled.
  std::uint32_t watchdog_ms = 0;

  // ---- live observability (DESIGN.md §5i) ----
  /// TCP port for the embedded stats endpoint (/metrics Prometheus text,
  /// /statz JSON, /healthz). -1 = no listener; 0 = ephemeral port (read it
  /// back with stats_port()). Enabling the listener also enables the
  /// sampler — /statz windows need time series behind them.
  int stats_port = -1;
  /// Run the background MetricsSampler even without a listener (windowed
  /// rollups through stats()/statz_json()).
  bool enable_sampler = false;
  /// Sampler tick period.
  std::uint32_t sampler_period_ms = 1000;
  /// Per-request stage tracing: every request logs admission → queue →
  /// seal → form → execute → respond markers into a bounded ring that
  /// write_unified_trace() merges onto the timeline ("requests" row) and
  /// `bpar_prof request <id>` reconstructs.
  bool trace_requests = true;
  /// Availability / latency objectives for the built-in SLO tracker.
  obs::SloOptions slo{};

  // ---- flight recorder + profiler (DESIGN.md §5j) ----
  /// Directory for flight-recorder dump bundles. Non-empty arms the
  /// recorder: the circuit breaker, the engine watchdog, runtime watchdog
  /// errors, and SLO both-window alerting each snapshot the last N seconds
  /// of spans / task rows / request events / metrics into a rotated,
  /// size-bounded bundle here, and `GET /debug/dump` forces one manually.
  /// Fatal signals leave an async-signal-safe marker file in the same
  /// directory. Empty = no recorder.
  std::string dump_dir;
  /// Minimum spacing between automatic dumps (a flapping breaker writes
  /// one bundle, not hundreds).
  std::uint32_t dump_debounce_ms = 5000;
  /// Rotation bounds for the dump directory.
  std::size_t dump_max_bundles = 8;
  std::uint64_t dump_max_total_bytes = 64ULL << 20;
  /// Run the continuous span-stack profiler for the engine's lifetime, so
  /// `GET /profilez` serves windowed deltas and every dump bundle carries
  /// a folded profile. Off by default: sampling costs ~4 relaxed stores
  /// per span push/pop on every instrumented thread.
  bool enable_profiler = false;
  /// Profiler sampling period (see obs::ProfilerOptions).
  std::uint32_t profiler_period_us = 2000;
};

enum class Status {
  kOk,
  kRejected,          // bounded queue (or class quota) full at submit time
  kShed,              // load-shed from the queue under overload
  kDeadlineExceeded,  // request expired before execution
  kShutdown,          // submitted after shutdown() began
  kFailed,            // invalid request (validation error; see error)
  kInternalError,     // execution failed after retries + bisection
};
inline constexpr int kNumStatuses = 7;

[[nodiscard]] const char* status_name(Status status);

/// Engine health state machine (DESIGN.md §5h): healthy → degraded when
/// the circuit breaker has stepped down the ladder (or failures are
/// accumulating), back to healthy after a successful recovery probe;
/// draining once shutdown() begins.
enum class Health { kHealthy, kDegraded, kDraining };

[[nodiscard]] const char* health_name(Health health);

/// Lifecycle stages a request passes through, logged (when
/// EngineOptions::trace_requests) as timestamped markers keyed by the
/// request id. `arg` disambiguates within a stage: batch size at kSealed,
/// padded rows at kFormed, attempt number at kRetry, bisection depth at
/// kBisect, and the final Status at kResponded.
enum class RequestStage : std::uint8_t {
  kSubmitted,  // id assigned, request validated
  kQueued,     // earned a queue slot
  kSealed,     // taken into a micro-batch (arg = batch size)
  kFormed,     // batch buffers filled (arg = padded rows)
  kExecBegin,  // first execution attempt starts
  kExecEnd,    // execution attempts finished (ok or not)
  kRetry,      // whole-batch retry (arg = attempt number)
  kBisect,     // batch split to isolate a fault (arg = depth)
  kResponded,  // promise fulfilled (arg = Status)
};
inline constexpr int kNumRequestStages = 9;

[[nodiscard]] const char* request_stage_name(RequestStage stage);

/// One entry of the engine's bounded request-event ring.
struct RequestEvent {
  std::uint64_t id = 0;
  std::uint64_t ts_ns = 0;  // absolute steady-clock ns
  RequestStage stage = RequestStage::kSubmitted;
  std::int32_t arg = 0;
};

/// One sequence to classify. `features` is row-major by timestep:
/// features[t * input_size + f]. Labels are optional — empty means no loss
/// is computed; otherwise 1 entry (many-to-one) or `steps` entries
/// (many-to-many) and the response carries this request's exact loss.
struct Request {
  int steps = 0;
  std::vector<float> features;
  std::vector<int> labels;
  /// Optional absolute deadline; default (epoch) = none. Already-expired
  /// deadlines are answered kDeadlineExceeded at submit() without ever
  /// occupying a queue slot.
  std::chrono::steady_clock::time_point deadline{};
  bool want_logits = false;
  /// Admission class: kHigh is sealed first and never shed; kBatch is the
  /// first to be shed under overload.
  Priority priority = Priority::kNormal;
};

struct Response {
  Status status = Status::kOk;
  std::uint64_t id = 0;
  /// Mean cross-entropy of THIS request (padding-immune; 0 without labels).
  double loss = 0.0;
  std::vector<int> predictions;  // [outputs] argmax class ids
  std::vector<float> logits;     // [outputs * classes] when want_logits
  int batch_rows = 0;            // executed micro-batch rows (with padding)
  int real_rows = 0;             // of which were real requests
  double queue_us = 0.0;         // submit → micro-batch sealed
  double batch_form_us = 0.0;    // seal → batch buffers filled
  double exec_us = 0.0;          // task-graph execution (incl. retries)
  std::string error;             // kFailed / kInternalError diagnostic
};

/// Counter snapshot + health; the `serve.*` metrics mirror these.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // answered kOk
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;           // validation failures
  std::uint64_t internal_errors = 0;  // answered kInternalError
  std::uint64_t batches = 0;
  std::uint64_t padded_rows = 0;
  std::uint64_t retries = 0;          // whole-batch retry attempts
  std::uint64_t bisections = 0;       // batch splits isolating a fault
  std::uint64_t degraded_steps = 0;   // breaker trips down the ladder
  std::uint64_t recovered_steps = 0;  // successful half-open probes up
  std::uint64_t watchdog_fires = 0;   // engine-watchdog interventions
  std::uint64_t executor_rebuilds = 0;  // poisoned-runtime replacements
  int degrade_level = 0;  // current ladder level (0 = full service)
  Health health = Health::kHealthy;
  std::size_t queue_depth = 0;  // all classes together
  /// Per-class backlog, indexed by Priority.
  std::array<std::size_t, kNumPriorities> queue_depths{};
  /// SLO tracker state (availability, latency attainment, budget burn).
  obs::SloTracker::Snapshot slo{};
};

class InferenceEngine {
 public:
  /// Builds the network from `config` (load trained weights through
  /// network() or load_weights() before serving) and starts the dispatcher.
  InferenceEngine(const rnn::NetworkConfig& config, EngineOptions options);
  ~InferenceEngine();  // shutdown(): drains the queue, joins the dispatcher

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  [[nodiscard]] rnn::Network& network() { return net_; }
  [[nodiscard]] const rnn::NetworkConfig& config() const {
    return net_.config();
  }
  [[nodiscard]] exec::BParExecutor& executor() { return *executor_; }

  /// Reads weights saved by Model::save / rnn::Network::save.
  void load_weights(const std::string& path);

  /// Pre-builds the forward program of every row bucket for each sequence
  /// length, so the first real requests don't pay graph construction.
  void warmup(std::span<const int> seq_lengths);

  /// Thread-safe. The future completes when the request is served (or
  /// immediately, with a non-kOk status, when it cannot be queued).
  [[nodiscard]] std::future<Response> submit(Request request);

  /// Blocking convenience: submit(request).get().
  [[nodiscard]] Response infer(Request request);

  /// Stops intake (new submits answer kShutdown), serves everything already
  /// queued, and joins the dispatcher. Idempotent.
  void shutdown();

  /// Deprecated spelling kept for callers of stats() from before the
  /// resilience layer; EngineStats is the real name.
  using Stats = EngineStats;
  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] Health health() const;
  /// Current degradation-ladder level: 0 = full service; each step disables
  /// one acceleration (int8, SIMD backend, batching) in order.
  [[nodiscard]] int degrade_level() const {
    return degrade_level_.load(std::memory_order_relaxed);
  }

  /// Writes a unified chrome-trace (task slices of the LAST served
  /// micro-batch + every obs span recorded so far + per-request stage
  /// markers on a "requests" row) that `bpar_prof analyze` / `bpar_prof
  /// request <id>` consume. Requires EngineOptions::record_trace and at
  /// least one cached-path batch; call when quiescent (after shutdown()).
  void write_unified_trace(const std::string& path);

  /// The bound stats-endpoint port (useful with EngineOptions::stats_port
  /// = 0), or -1 when no listener is running.
  [[nodiscard]] int stats_port() const;
  /// The /statz payload: EngineStats + per-class queue depths + SLO state
  /// + sampler windows + the full metrics registry, as one JSON object.
  /// Works with or without a listener (the sampler section degrades to
  /// whatever has been collected).
  [[nodiscard]] std::string statz_json() const;
  /// The background sampler, or nullptr when not enabled.
  [[nodiscard]] const obs::MetricsSampler* sampler() const {
    return sampler_.get();
  }
  /// Copy of the request-event ring (oldest first) and how many events the
  /// bounded ring has discarded.
  [[nodiscard]] std::vector<RequestEvent> request_events() const;
  [[nodiscard]] std::uint64_t request_events_dropped() const;

  /// Forces a flight-recorder dump (same path the automatic triggers use,
  /// including the debounce). Thread-safe. Returns written=false with a
  /// `skipped` reason when no recorder is armed or the trigger debounced.
  obs::DumpResult trigger_dump(std::string_view reason);
  /// The armed flight recorder, or nullptr when dump_dir is empty.
  [[nodiscard]] const obs::FlightRecorder* flight_recorder() const {
    return flight_.get();
  }
  /// The continuous span-stack profiler, or nullptr unless
  /// EngineOptions::enable_profiler.
  [[nodiscard]] const obs::SpanProfiler* profiler() const {
    return profiler_.get();
  }
  /// Collapsed-flamegraph text for roughly the next `seconds` of serving
  /// (what `GET /profilez?seconds=N` returns): a windowed delta of the
  /// continuous profiler when one is running, otherwise an ephemeral
  /// profiler spun up just for the window. Blocks for the window.
  [[nodiscard]] std::string profile_folded(double seconds);

  /// The row bucket a micro-batch of `rows` requests pads up to: the next
  /// power of two, clamped to `max_batch`.
  [[nodiscard]] static int bucket_rows(int rows, int max_batch);

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request request;
    std::promise<Response> promise;
    Clock::time_point enqueued;
    std::uint64_t id = 0;
  };

  /// One rung of the degradation ladder: what is switched OFF at this
  /// level. Levels are cumulative (level 2 includes level 1's flags).
  struct DegradeStep {
    const char* name = "full";
    bool disable_quantized = false;
    bool scalar_backend = false;
    bool batch_one = false;
  };

  void dispatcher_loop();
  void watchdog_loop();
  /// Serves one sealed micro-batch (dispatcher thread only).
  void process_batch(std::vector<Pending> taken, Clock::time_point sealed);
  /// Forms + executes a request group with bounded retries; bisects on
  /// exhaustion. Answers every promise exactly once. Dispatcher thread.
  void serve_group(std::vector<Pending> live, Clock::time_point sealed,
                   int depth);
  /// One execution attempt under the current degradation level; never
  /// throws. Returns an empty error string on success.
  std::string try_execute(const rnn::BatchData& batch, bool need_logits,
                          int steps, int rows, exec::InferResult& result);
  /// Answers overdue sheddable requests with kShed. Caller holds mu_.
  void shed_overdue_locked(Clock::time_point now);
  /// Circuit breaker bookkeeping (dispatcher thread).
  void note_group_success();
  void note_group_failure();
  void apply_degrade_level(int level);
  /// Replaces a poisoned executor with a fresh one (dispatcher thread).
  void rebuild_executor();
  void set_health(Health health);
  void touch_progress();
  /// Appends to the bounded request-event ring (no-op unless
  /// EngineOptions::trace_requests). Any thread.
  void record_request_event(std::uint64_t id, RequestStage stage,
                            std::int32_t arg = 0);
  /// SLO bookkeeping for one terminal response (kRejected / kShutdown /
  /// kFailed are not SLO-eligible — they are client errors or the client's
  /// own backpressure signal, not service failures).
  void record_slo(Status status, double latency_us);
  /// Publishes serve.queue_depth and the per-class
  /// serve.queue_depth.{high,normal,batch} gauges. Caller holds mu_.
  void publish_queue_depths_locked();
  /// Builds + starts the sampler / stats listener per options_ (ctor).
  void start_observability();
  /// Builds + arms the flight recorder / profiler per options_ (ctor,
  /// before start_observability so handlers can reference them).
  void start_flight_recorder();
  /// The request-stage instant markers as a trace-export hook, shared by
  /// write_unified_trace() and flight dumps.
  [[nodiscard]] obs::ExtraEventEmitter request_marker_emitter() const;
  /// FlightRecorder trace provider: the last traced batch's unified trace
  /// when one exists, else a spans-only trace — request markers ride along
  /// either way. Takes trace_mu_.
  bool write_flight_trace(std::ostream& os);
  /// Edge-detects SLO both-window alerting and fires a dump on the rising
  /// edge. Dispatcher thread, mu_ not held.
  void check_slo_alert();
  /// Serve-queue memory accounting (mem.serve_queue): the payload bytes a
  /// queued request pins.
  static std::uint64_t pending_bytes(const Pending& pending);
  [[nodiscard]] std::string validate(const Request& request) const;
  [[nodiscard]] std::size_t total_queued_locked() const;
  [[nodiscard]] std::uint32_t effective_shed_wait_us() const;
  /// The executor serving at the current degradation level (fp32 sidecar
  /// when the int8 path has been stepped off). Dispatcher thread.
  [[nodiscard]] exec::BParExecutor& active_executor();

  rnn::Network net_;
  EngineOptions options_;
  std::unique_ptr<exec::BParExecutor> executor_;
  /// fp32 fallback executor, built lazily the first time the ladder steps
  /// off the int8 path (only ever non-null when options_.quantized).
  std::unique_ptr<exec::BParExecutor> fp32_executor_;
  Clock::time_point started_;
  std::string native_backend_;  // kernel backend at construction

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Per-class FIFO queues, indexed by Priority; strict priority across
  /// classes at seal time. All guarded by mu_.
  std::array<std::deque<Pending>, kNumPriorities> queues_;
  std::atomic<bool> stopping_{false};  // written under mu_

  mutable std::mutex trace_mu_;  // guards the two last-trace fields
  graph::TrainingProgram* last_traced_program_ = nullptr;
  taskrt::RunStats last_traced_stats_;

  // ---- live observability (DESIGN.md §5i) ----
  obs::SloTracker slo_;
  std::unique_ptr<obs::MetricsSampler> sampler_;
  std::unique_ptr<obs::StatsServer> stats_server_;
  // ---- flight recorder + profiler (DESIGN.md §5j) ----
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::SpanProfiler> profiler_;
  bool slo_alerting_prev_ = false;  // dispatcher thread only
  /// Bounded drop-oldest request-event log. Its own mutex: recording
  /// happens on the submit path and inside serve_group, where mu_ is not
  /// (or must not be) held.
  static constexpr std::size_t kMaxRequestEvents = 1U << 16;
  mutable std::mutex req_mu_;
  std::deque<RequestEvent> request_events_;
  std::uint64_t request_events_dropped_ = 0;

  // ---- degradation ladder + circuit breaker (dispatcher thread) ----
  std::vector<DegradeStep> ladder_;  // [0] = full service
  int consecutive_failures_ = 0;
  int consecutive_successes_ = 0;
  std::atomic<int> degrade_level_{0};
  std::atomic<int> health_{0};  // Health as int, for lock-free reads

  // ---- engine watchdog ----
  std::atomic<std::uint64_t> last_progress_ns_{0};
  std::atomic<bool> in_flight_{false};  // dispatcher inside process_batch
  std::condition_variable watchdog_cv_;  // waits on mu_

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> internal_errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> padded_rows_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> bisections_{0};
  std::atomic<std::uint64_t> degraded_steps_{0};
  std::atomic<std::uint64_t> recovered_steps_{0};
  std::atomic<std::uint64_t> watchdog_fires_{0};
  std::atomic<std::uint64_t> executor_rebuilds_{0};

  // Threads last: they start after everything above is initialized.
  std::thread watchdog_;
  std::thread dispatcher_;
};

}  // namespace bpar::serve
