// Inference serving engine: concurrent clients, dynamic micro-batching,
// cached forward-only task graphs (DESIGN.md §5f).
//
// An InferenceEngine owns a trained rnn::Network and a BParExecutor whose
// per-(seq_length, batch_rows) program cache turns every repeated request
// shape into a prebuilt task-graph replay — no graph construction on the
// hot path. Clients submit single-sequence requests from any thread; a
// single dispatcher thread coalesces them into micro-batches (up to
// `max_batch`, or whatever arrived when the head request has waited
// `max_delay_us`), pads the batch up to a power-of-two row bucket so the
// cache stays small, and masks the padded rows out of every per-request
// result (argmax, logits, loss — per-request losses are recomputed from the
// request's own logits, so padding never pollutes them).
//
// Backpressure: the request queue is bounded (`max_queue`); submissions
// beyond it complete immediately with Status::kRejected. Requests may carry
// a deadline — once expired they are answered with kDeadlineExceeded
// instead of executing. shutdown() stops intake, drains everything already
// queued, and joins the dispatcher.
//
// Observability: per-stage latency histograms (serve.queue_us /
// serve.batch_form_us / serve.exec_us), request/batch counters, and
// throughput + queue-depth gauges in the obs registry; BPAR_SPAN tracing on
// the submit and batch paths, so `bpar_prof analyze` works on serving runs
// unchanged.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "exec/bpar_executor.hpp"
#include "exec/common_options.hpp"
#include "rnn/network.hpp"

namespace bpar::serve {

struct EngineOptions {
  /// Workers / replicas / policy for the owned BParExecutor. Replicas are
  /// clamped to the micro-batch rows per shape, so small batches degrade
  /// gracefully to one replica.
  exec::CommonOptions executor{};
  /// Largest micro-batch the dispatcher coalesces (and the top row bucket).
  int max_batch = 8;
  /// Flush deadline: a formed batch executes as soon as it reaches
  /// max_batch OR the oldest queued request has waited this long.
  std::uint32_t max_delay_us = 500;
  /// Bounded queue; submissions beyond this reject with kRejected.
  std::size_t max_queue = 256;
  /// false → every request executes alone (batch-1 latency mode).
  bool enable_batching = true;
  /// Benchmark knob: build a fresh executor (and thus fresh task graphs)
  /// for every micro-batch instead of replaying the cached programs. Only
  /// for measuring what the cache buys (tools/bpar_serve --rebuild).
  bool rebuild_per_call = false;
  /// Record per-task timing in the executor so write_unified_trace() can
  /// export an analyzable trace (`bpar_prof analyze`) of the last batch.
  bool record_trace = false;
  /// int8 inference (DESIGN.md §5g): serve with quantized weights.
  /// load_weights() re-quantizes automatically.
  bool quantized = false;
};

enum class Status {
  kOk,
  kRejected,          // bounded queue full at submit time
  kDeadlineExceeded,  // request expired before execution
  kShutdown,          // submitted after shutdown() began
  kFailed,            // invalid request or executor error (see error)
};

[[nodiscard]] const char* status_name(Status status);

/// One sequence to classify. `features` is row-major by timestep:
/// features[t * input_size + f]. Labels are optional — empty means no loss
/// is computed; otherwise 1 entry (many-to-one) or `steps` entries
/// (many-to-many) and the response carries this request's exact loss.
struct Request {
  int steps = 0;
  std::vector<float> features;
  std::vector<int> labels;
  /// Optional absolute deadline; default (epoch) = none.
  std::chrono::steady_clock::time_point deadline{};
  bool want_logits = false;
};

struct Response {
  Status status = Status::kOk;
  std::uint64_t id = 0;
  /// Mean cross-entropy of THIS request (padding-immune; 0 without labels).
  double loss = 0.0;
  std::vector<int> predictions;  // [outputs] argmax class ids
  std::vector<float> logits;     // [outputs * classes] when want_logits
  int batch_rows = 0;            // executed micro-batch rows (with padding)
  int real_rows = 0;             // of which were real requests
  double queue_us = 0.0;         // submit → micro-batch sealed
  double batch_form_us = 0.0;    // seal → batch buffers filled
  double exec_us = 0.0;          // task-graph execution
  std::string error;             // kFailed diagnostic
};

class InferenceEngine {
 public:
  /// Builds the network from `config` (load trained weights through
  /// network() or load_weights() before serving) and starts the dispatcher.
  InferenceEngine(const rnn::NetworkConfig& config, EngineOptions options);
  ~InferenceEngine();  // shutdown(): drains the queue, joins the dispatcher

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  [[nodiscard]] rnn::Network& network() { return net_; }
  [[nodiscard]] const rnn::NetworkConfig& config() const {
    return net_.config();
  }
  [[nodiscard]] exec::BParExecutor& executor() { return executor_; }

  /// Reads weights saved by Model::save / rnn::Network::save.
  void load_weights(const std::string& path);

  /// Pre-builds the forward program of every row bucket for each sequence
  /// length, so the first real requests don't pay graph construction.
  void warmup(std::span<const int> seq_lengths);

  /// Thread-safe. The future completes when the request is served (or
  /// immediately, with a non-kOk status, when it cannot be queued).
  [[nodiscard]] std::future<Response> submit(Request request);

  /// Blocking convenience: submit(request).get().
  [[nodiscard]] Response infer(Request request);

  /// Stops intake (new submits answer kShutdown), serves everything already
  /// queued, and joins the dispatcher. Idempotent.
  void shutdown();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  // answered kOk
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    std::uint64_t failed = 0;
    std::uint64_t batches = 0;
    std::uint64_t padded_rows = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t queue_depth() const;

  /// Writes a unified chrome-trace (task slices of the LAST served
  /// micro-batch + every obs span recorded so far) that `bpar_prof
  /// analyze` consumes. Requires EngineOptions::record_trace and at least
  /// one cached-path batch; call when quiescent (e.g. after shutdown()).
  void write_unified_trace(const std::string& path);

  /// The row bucket a micro-batch of `rows` requests pads up to: the next
  /// power of two, clamped to `max_batch`.
  [[nodiscard]] static int bucket_rows(int rows, int max_batch);

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request request;
    std::promise<Response> promise;
    Clock::time_point enqueued;
    std::uint64_t id = 0;
  };

  void dispatcher_loop();
  /// Serves one sealed micro-batch (dispatcher thread only).
  void process_batch(std::vector<Pending> taken, Clock::time_point sealed);
  [[nodiscard]] std::string validate(const Request& request) const;

  rnn::Network net_;
  EngineOptions options_;
  exec::BParExecutor executor_;
  Clock::time_point started_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;  // guarded by mu_
  bool stopping_ = false;      // guarded by mu_

  mutable std::mutex trace_mu_;  // guards the two last-trace fields
  graph::TrainingProgram* last_traced_program_ = nullptr;
  taskrt::RunStats last_traced_stats_;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> padded_rows_{0};

  std::thread dispatcher_;  // last member: starts after everything above
};

}  // namespace bpar::serve
