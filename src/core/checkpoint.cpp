#include "core/checkpoint.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/bpar.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define BPAR_HAVE_FSYNC 1
#endif

namespace bpar::ckpt {
namespace {

constexpr char kMagic[8] = {'B', 'P', 'A', 'R', 'C', 'K', 'P', '2'};
constexpr char kMagicV1[8] = {'B', 'P', 'A', 'R', 'C', 'K', 'P', '1'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMaxSectionName = 256;

void append_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Bounds-checked reader over the in-memory file image.
class Reader {
 public:
  Reader(const std::string& data, const std::string& path)
      : data_(data), path_(path) {}

  void read_raw(void* dst, std::size_t n, const char* what) {
    if (pos_ + n > data_.size()) {
      BPAR_RAISE(util::CheckpointError, "checkpoint '", path_,
                 "' is truncated: need ", n, " byte(s) for ", what,
                 " at offset ", pos_, " but the file has ", data_.size(),
                 " — was the writer interrupted? delete the file or fall "
                 "back to an older checkpoint");
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
  }

  std::uint32_t read_u32(const char* what) {
    std::uint32_t v = 0;
    read_raw(&v, sizeof v, what);
    return v;
  }

  std::uint64_t read_u64(const char* what) {
    std::uint64_t v = 0;
    read_raw(&v, sizeof v, what);
    return v;
  }

  std::string read_bytes(std::size_t n, const char* what) {
    std::string out(n, '\0');
    read_raw(out.data(), n, what);
    return out;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  const std::string& data_;
  const std::string& path_;
  std::size_t pos_ = 0;
};

#if BPAR_HAVE_FSYNC
void fsync_path(const std::string& path, const std::string& context) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort (e.g. directories on some filesystems)
  if (::fsync(fd) != 0) {
    BPAR_LOG_WARN << "fsync of " << context << " '" << path << "' failed";
  }
  ::close(fd);
}
#endif

}  // namespace

void write_checkpoint_file(const std::string& path,
                           const std::vector<Section>& sections) {
  std::string blob;
  blob.append(kMagic, sizeof kMagic);
  append_u32(blob, kVersion);
  append_u32(blob, static_cast<std::uint32_t>(sections.size()));
  for (const Section& section : sections) {
    BPAR_CHECK(section.name.size() < kMaxSectionName,
               "checkpoint section name too long");
    append_u32(blob, static_cast<std::uint32_t>(section.name.size()));
    blob.append(section.name);
    append_u64(blob, section.payload.size());
    append_u32(blob,
               util::crc32(section.payload.data(), section.payload.size()));
    blob.append(section.payload);
  }

  const std::string tmp = path + ".tmp";
#if BPAR_HAVE_FSYNC
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    BPAR_RAISE(util::CheckpointError, "cannot open '", tmp,
               "' for writing checkpoint");
  }
  std::size_t written = 0;
  while (written < blob.size()) {
    const ::ssize_t n =
        ::write(fd, blob.data() + written, blob.size() - written);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      BPAR_RAISE(util::CheckpointError, "write to '", tmp, "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
  // Durability order: payload bytes first, then the rename that publishes
  // them, then the directory entry — a crash at any point leaves either
  // the old checkpoint or the complete new one.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    BPAR_RAISE(util::CheckpointError, "fsync of '", tmp, "' failed");
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    BPAR_RAISE(util::CheckpointError, "rename '", tmp, "' -> '", path,
               "' failed");
  }
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  fsync_path(dir.empty() ? "." : dir, "checkpoint directory");
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out.good()) {
      BPAR_RAISE(util::CheckpointError, "write to '", tmp, "' failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    BPAR_RAISE(util::CheckpointError, "rename '", tmp, "' -> '", path,
               "' failed: ", ec.message());
  }
#endif
}

std::vector<Section> read_checkpoint_file(const std::string& path) {
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      BPAR_RAISE(util::CheckpointError, "cannot open checkpoint '", path,
                 "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    data = std::move(buf).str();
  }

  Reader reader(data, path);
  char magic[8] = {};
  reader.read_raw(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kMagicV1, sizeof magic) == 0) {
    BPAR_RAISE(util::CheckpointError, "checkpoint '", path,
               "' uses the legacy v1 format (no checksums or atomic "
               "writes); re-save it with this build");
  }
  if (std::memcmp(magic, kMagic, sizeof magic) != 0) {
    BPAR_RAISE(util::CheckpointError, "'", path,
               "' is not a B-Par checkpoint (bad magic)");
  }
  const std::uint32_t version = reader.read_u32("container version");
  if (version != kVersion) {
    BPAR_RAISE(util::CheckpointError, "checkpoint '", path,
               "' has unsupported container version ", version, " (want ",
               kVersion, ")");
  }
  const std::uint32_t count = reader.read_u32("section count");
  std::vector<Section> sections;
  sections.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Section section;
    const std::uint32_t name_len = reader.read_u32("section name length");
    if (name_len >= kMaxSectionName) {
      BPAR_RAISE(util::CheckpointError, "checkpoint '", path,
                 "' is corrupt: section ", i, " name length ", name_len,
                 " exceeds ", kMaxSectionName);
    }
    section.name = reader.read_bytes(name_len, "section name");
    const std::uint64_t size = reader.read_u64("section payload size");
    const std::uint32_t stored_crc = reader.read_u32("section checksum");
    section.payload = reader.read_bytes(static_cast<std::size_t>(size),
                                        section.name.c_str());
    const std::uint32_t actual_crc =
        util::crc32(section.payload.data(), section.payload.size());
    if (actual_crc != stored_crc) {
      BPAR_RAISE(util::CheckpointError, "checkpoint '", path,
                 "' section '", section.name,
                 "' failed its CRC-32 check (stored ", stored_crc, ", got ",
                 actual_crc,
                 ") — the file is corrupt (torn write or bit rot); fall "
                 "back to an older checkpoint");
    }
    sections.push_back(std::move(section));
  }
  return sections;
}

const Section& find_section(const std::vector<Section>& sections,
                            const std::string& name,
                            const std::string& path) {
  for (const Section& section : sections) {
    if (section.name == name) return section;
  }
  BPAR_RAISE(util::CheckpointError, "checkpoint '", path,
             "' is missing required section '", name, "'");
}

}  // namespace bpar::ckpt

namespace bpar {
namespace {

namespace fs = std::filesystem;

std::string step_path(const std::string& prefix, std::uint64_t step) {
  return prefix + "-" + std::to_string(step) + ".ckpt";
}

}  // namespace

CheckpointManager::CheckpointManager(std::string prefix, int keep)
    : prefix_(std::move(prefix)), keep_(keep) {
  BPAR_CHECK(keep_ >= 1, "CheckpointManager keep must be >= 1");
  BPAR_CHECK(!prefix_.empty(), "CheckpointManager prefix must be non-empty");
}

std::vector<std::pair<std::uint64_t, std::string>> CheckpointManager::list()
    const {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  const fs::path prefix_path(prefix_);
  const fs::path dir =
      prefix_path.has_parent_path() ? prefix_path.parent_path() : fs::path(".");
  const std::string stem = prefix_path.filename().string() + "-";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= stem.size() + 5 || name.rfind(stem, 0) != 0 ||
        !name.ends_with(".ckpt")) {
      continue;
    }
    const std::string_view digits(name.data() + stem.size(),
                                  name.size() - stem.size() - 5);
    std::uint64_t step = 0;
    const auto [ptr, parse_ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), step);
    if (parse_ec != std::errc{} || ptr != digits.data() + digits.size()) {
      continue;
    }
    found.emplace_back(step, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

std::string CheckpointManager::save(const Model& model, std::uint64_t step) {
  const fs::path prefix_path(prefix_);
  if (prefix_path.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(prefix_path.parent_path(), ec);
  }
  const std::string path = step_path(prefix_, step);
  model.save_checkpoint(path);
  const auto existing = list();
  for (std::size_t i = static_cast<std::size_t>(keep_); i < existing.size();
       ++i) {
    std::error_code ec;
    fs::remove(existing[i].second, ec);
    if (ec) {
      BPAR_LOG_WARN << "could not prune old checkpoint '"
                    << existing[i].second << "': " << ec.message();
    }
  }
  return path;
}

std::optional<std::uint64_t> CheckpointManager::load_latest_good(
    Model& model) {
  for (const auto& [step, path] : list()) {
    try {
      model.load_checkpoint(path);
      return step;
    } catch (const util::CheckpointError& e) {
      BPAR_LOG_WARN << "skipping bad checkpoint: " << e.what();
    }
  }
  return std::nullopt;
}

}  // namespace bpar
