#include "core/bpar.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/checkpoint.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace bpar {

const char* version() { return "1.0.0"; }

const char* executor_kind_name(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSequential:
      return "sequential";
    case ExecutorKind::kBPar:
      return "b-par";
    case ExecutorKind::kBSeq:
      return "b-seq";
    case ExecutorKind::kLayerBarrier:
      return "layer-barrier";
  }
  return "unknown";
}

std::unique_ptr<exec::Executor> make_executor(ExecutorKind kind,
                                              rnn::Network& net,
                                              const ExecutorOptions& options) {
  switch (kind) {
    case ExecutorKind::kSequential:
      return std::make_unique<exec::SequentialExecutor>(net);
    case ExecutorKind::kBPar:
      return std::make_unique<exec::BParExecutor>(
          net, exec::BParOptions{.common = options});
    case ExecutorKind::kBSeq:
      return std::make_unique<exec::BSeqExecutor>(
          net, exec::BSeqOptions{.common = options});
    case ExecutorKind::kLayerBarrier:
      return std::make_unique<exec::BarrierExecutor>(
          net, exec::BarrierOptions{.common = options});
  }
  BPAR_CHECK(false, "unknown executor kind");
  return nullptr;
}

Model::Model(const rnn::NetworkConfig& config) : net_(config) {
  executor_ = make_executor(ExecutorKind::kSequential, net_);
  optimizer_ = std::make_unique<train::Sgd>(train::Sgd::Config{});
}

void Model::select_executor(ExecutorKind kind,
                            const ExecutorOptions& options) {
  executor_ = make_executor(kind, net_, options);
}

exec::Executor& Model::executor() { return *executor_; }

void Model::set_optimizer(std::unique_ptr<train::Optimizer> optimizer) {
  BPAR_CHECK(optimizer != nullptr, "null optimizer");
  optimizer_ = std::move(optimizer);
}

train::Optimizer& Model::optimizer() { return *optimizer_; }

exec::StepResult Model::train_batch(const rnn::BatchData& batch) {
  auto result = executor_->train_batch(batch);
  optimizer_->step(net_, executor_->grads());
  return result;
}

exec::InferResult Model::infer(const rnn::BatchData& batch,
                               const exec::InferOptions& options) {
  return executor_->infer(batch, options);
}

exec::StepResult Model::infer_batch(const rnn::BatchData& batch,
                                    std::span<int> predictions) {
  exec::InferResult result = executor_->infer(batch);
  if (!predictions.empty()) {
    BPAR_CHECK(predictions.size() == result.predictions.size(),
               "prediction buffer size mismatch");
    std::copy(result.predictions.begin(), result.predictions.end(),
              predictions.begin());
  }
  exec::StepResult step;
  step.loss = result.loss;
  step.wall_ms = result.wall_ms;
  step.stats = std::move(result.stats);
  return step;
}

void Model::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  BPAR_CHECK(out.good(), "cannot open ", path, " for writing");
  net_.save(out);
}

void Model::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BPAR_CHECK(in.good(), "cannot open ", path);
  net_.load(in);
}

namespace {

// The "meta" checkpoint section: every config field that determines weight
// shapes, plus the optimizer name — validated *before* any tensor is
// deserialized, so a mismatched file fails with a clear error instead of a
// shape-check abort halfway through loading.
struct CheckpointMeta {
  std::int32_t cell = 0;
  std::int32_t merge = 0;
  std::int32_t input_size = 0;
  std::int32_t hidden_size = 0;
  std::int32_t num_layers = 0;
  std::int32_t num_classes = 0;
  std::int32_t seq_length = 0;
  std::int32_t batch_size = 0;
  std::int32_t many_to_many = 0;
};

CheckpointMeta meta_of(const rnn::NetworkConfig& cfg) {
  CheckpointMeta meta;
  meta.cell = static_cast<std::int32_t>(cfg.cell);
  meta.merge = static_cast<std::int32_t>(cfg.merge);
  meta.input_size = cfg.input_size;
  meta.hidden_size = cfg.hidden_size;
  meta.num_layers = cfg.num_layers;
  meta.num_classes = cfg.num_classes;
  meta.seq_length = cfg.seq_length;
  meta.batch_size = cfg.batch_size;
  meta.many_to_many = cfg.many_to_many ? 1 : 0;
  return meta;
}

}  // namespace

void Model::save_checkpoint(const std::string& path) const {
  std::vector<ckpt::Section> sections;

  const CheckpointMeta meta = meta_of(net_.config());
  const std::string opt_name = optimizer_->name();
  std::string meta_payload(reinterpret_cast<const char*>(&meta),
                           sizeof meta);
  const auto name_len = static_cast<std::uint32_t>(opt_name.size());
  meta_payload.append(reinterpret_cast<const char*>(&name_len),
                      sizeof name_len);
  meta_payload.append(opt_name);
  sections.push_back({"meta", std::move(meta_payload)});

  std::ostringstream model_blob(std::ios::binary);
  net_.save(model_blob);
  sections.push_back({"model", std::move(model_blob).str()});

  std::ostringstream opt_blob(std::ios::binary);
  optimizer_->save_state(opt_blob);
  sections.push_back({"optimizer", std::move(opt_blob).str()});

  ckpt::write_checkpoint_file(path, sections);
}

void Model::load_checkpoint(const std::string& path) {
  const std::vector<ckpt::Section> sections =
      ckpt::read_checkpoint_file(path);

  // Validate compatibility from "meta" before touching any weights.
  const ckpt::Section& meta_section =
      ckpt::find_section(sections, "meta", path);
  CheckpointMeta meta;
  std::uint32_t name_len = 0;
  if (meta_section.payload.size() < sizeof meta + sizeof name_len) {
    BPAR_RAISE(util::CheckpointError, "checkpoint '", path,
               "' has a malformed meta section");
  }
  std::memcpy(&meta, meta_section.payload.data(), sizeof meta);
  std::memcpy(&name_len, meta_section.payload.data() + sizeof meta,
              sizeof name_len);
  if (meta_section.payload.size() != sizeof meta + sizeof name_len + name_len) {
    BPAR_RAISE(util::CheckpointError, "checkpoint '", path,
               "' has a malformed meta section");
  }
  const std::string opt_name =
      meta_section.payload.substr(sizeof meta + sizeof name_len);

  const CheckpointMeta want = meta_of(net_.config());
  const auto check_dim = [&](const char* field, std::int32_t got,
                             std::int32_t expect) {
    if (got != expect) {
      BPAR_RAISE(util::CheckpointError, "checkpoint '", path,
                 "' dimension mismatch: ", field, " is ", got,
                 " in the file but ", expect,
                 " in this model — it was saved from a different "
                 "architecture");
    }
  };
  check_dim("cell", meta.cell, want.cell);
  check_dim("merge", meta.merge, want.merge);
  check_dim("input_size", meta.input_size, want.input_size);
  check_dim("hidden_size", meta.hidden_size, want.hidden_size);
  check_dim("num_layers", meta.num_layers, want.num_layers);
  check_dim("num_classes", meta.num_classes, want.num_classes);
  if (opt_name != optimizer_->name()) {
    BPAR_RAISE(util::CheckpointError, "checkpoint '", path,
               "' was written by optimizer '", opt_name,
               "' but the model uses '", optimizer_->name(), "'");
  }

  std::istringstream model_blob(
      ckpt::find_section(sections, "model", path).payload,
      std::ios::binary);
  net_.load(model_blob);
  std::istringstream opt_blob(
      ckpt::find_section(sections, "optimizer", path).payload,
      std::ios::binary);
  optimizer_->load_state(opt_blob, net_);
}

}  // namespace bpar
