#include "core/bpar.hpp"

#include <fstream>

#include "util/check.hpp"

namespace bpar {

const char* version() { return "1.0.0"; }

const char* executor_kind_name(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSequential:
      return "sequential";
    case ExecutorKind::kBPar:
      return "b-par";
    case ExecutorKind::kBSeq:
      return "b-seq";
    case ExecutorKind::kLayerBarrier:
      return "layer-barrier";
  }
  return "unknown";
}

std::unique_ptr<exec::Executor> make_executor(ExecutorKind kind,
                                              rnn::Network& net,
                                              const ExecutorOptions& options) {
  switch (kind) {
    case ExecutorKind::kSequential:
      return std::make_unique<exec::SequentialExecutor>(net);
    case ExecutorKind::kBPar:
      return std::make_unique<exec::BParExecutor>(
          net, exec::BParOptions{.num_workers = options.num_workers,
                                 .policy = options.policy,
                                 .num_replicas = options.num_replicas});
    case ExecutorKind::kBSeq:
      return std::make_unique<exec::BSeqExecutor>(
          net, exec::BSeqOptions{.num_workers = options.num_workers,
                                 .num_replicas = options.num_replicas});
    case ExecutorKind::kLayerBarrier:
      return std::make_unique<exec::BarrierExecutor>(
          net, exec::BarrierOptions{.num_workers = options.num_workers});
  }
  BPAR_CHECK(false, "unknown executor kind");
  return nullptr;
}

Model::Model(const rnn::NetworkConfig& config) : net_(config) {
  executor_ = make_executor(ExecutorKind::kSequential, net_);
  optimizer_ = std::make_unique<train::Sgd>(train::Sgd::Config{});
}

void Model::select_executor(ExecutorKind kind,
                            const ExecutorOptions& options) {
  executor_ = make_executor(kind, net_, options);
}

exec::Executor& Model::executor() { return *executor_; }

void Model::set_optimizer(std::unique_ptr<train::Optimizer> optimizer) {
  BPAR_CHECK(optimizer != nullptr, "null optimizer");
  optimizer_ = std::move(optimizer);
}

train::Optimizer& Model::optimizer() { return *optimizer_; }

exec::StepResult Model::train_batch(const rnn::BatchData& batch) {
  auto result = executor_->train_batch(batch);
  optimizer_->step(net_, executor_->grads());
  return result;
}

exec::StepResult Model::infer_batch(const rnn::BatchData& batch,
                                    std::span<int> predictions) {
  return executor_->infer_batch(batch, predictions);
}

void Model::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  BPAR_CHECK(out.good(), "cannot open ", path, " for writing");
  net_.save(out);
}

void Model::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BPAR_CHECK(in.good(), "cannot open ", path);
  net_.load(in);
}

void Model::save_checkpoint(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  BPAR_CHECK(out.good(), "cannot open ", path, " for writing");
  static constexpr char kMagic[8] = {'B', 'P', 'A', 'R', 'C', 'K', 'P', '1'};
  out.write(kMagic, sizeof kMagic);
  net_.save(out);
  const std::string opt_name = optimizer_->name();
  const auto name_len = static_cast<std::uint32_t>(opt_name.size());
  out.write(reinterpret_cast<const char*>(&name_len), sizeof name_len);
  out.write(opt_name.data(), static_cast<std::streamsize>(name_len));
  optimizer_->save_state(out);
}

void Model::load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BPAR_CHECK(in.good(), "cannot open ", path);
  char magic[8] = {};
  in.read(magic, sizeof magic);
  BPAR_CHECK(in.good() && std::string_view(magic, 8) == "BPARCKP1",
             "not a B-Par checkpoint file");
  net_.load(in);
  std::uint32_t name_len = 0;
  in.read(reinterpret_cast<char*>(&name_len), sizeof name_len);
  BPAR_CHECK(in.good() && name_len < 64, "corrupt checkpoint");
  std::string opt_name(name_len, ' ');
  in.read(opt_name.data(), static_cast<std::streamsize>(name_len));
  BPAR_CHECK(opt_name == optimizer_->name(),
             "checkpoint was written by optimizer '", opt_name,
             "' but the model uses '", optimizer_->name(), "'");
  optimizer_->load_state(in, net_);
}

}  // namespace bpar
