// Crash-safe checkpoint container (format v2) and rotation manager.
//
// On-disk layout (all integers little-endian, as written by the host):
//
//   magic   8 bytes  "BPARCKP2"
//   u32     container version (2)
//   u32     section count N
//   N x section:
//     u32   name length L        (L < 256)
//     L     name bytes
//     u64   payload size S
//     u32   CRC-32 of the payload
//     S     payload bytes
//
// Every failure mode a crash can produce is diagnosed at load time with a
// util::CheckpointError naming the file and the defect: truncation (short
// read anywhere), bit rot / torn writes (per-section CRC mismatch), wrong
// or legacy magic, and — one level up in Model::load_checkpoint — model
// dimension or optimizer mismatches via the "meta" section.
//
// Writes are atomic: the container is serialized to <path>.tmp, fsync'd,
// then rename(2)'d over <path> (and the directory fsync'd), so a crash
// mid-save leaves either the previous checkpoint or a stray .tmp — never a
// half-written file under the final name.
//
// CheckpointManager adds rotation: save() writes <prefix>-<step>.ckpt and
// prunes all but the newest K; load_latest_good() walks newest → oldest,
// skipping files that fail validation, so one torn file costs one
// checkpoint interval of work, not the run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bpar {

class Model;

namespace ckpt {

struct Section {
  std::string name;
  std::string payload;
};

/// Serializes `sections` to `path` atomically (tmp file → fsync → rename).
/// Throws util::CheckpointError on any I/O failure.
void write_checkpoint_file(const std::string& path,
                           const std::vector<Section>& sections);

/// Reads and fully validates a v2 container. Throws util::CheckpointError
/// naming `path` and the defect (truncated, CRC mismatch, bad magic,
/// legacy v1, ...).
[[nodiscard]] std::vector<Section> read_checkpoint_file(
    const std::string& path);

/// Returns the section named `name` or throws util::CheckpointError.
[[nodiscard]] const Section& find_section(
    const std::vector<Section>& sections, const std::string& name,
    const std::string& path);

}  // namespace ckpt

/// Rotates the last K good checkpoints of one training run.
class CheckpointManager {
 public:
  /// Files are written as <prefix>-<step>.ckpt; `prefix` may contain
  /// directories (created on first save). keep >= 1.
  CheckpointManager(std::string prefix, int keep = 3);

  /// Saves a full training checkpoint for `step` and prunes old files down
  /// to the configured K. Returns the path written.
  std::string save(const Model& model, std::uint64_t step);

  /// Loads the newest checkpoint that validates, skipping (and warning
  /// about) corrupt ones. Returns its step, or nullopt when none loads.
  std::optional<std::uint64_t> load_latest_good(Model& model);

  /// Existing (step, path) pairs, newest first.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>> list()
      const;

  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  [[nodiscard]] int keep() const { return keep_; }

 private:
  std::string prefix_;
  int keep_;
};

}  // namespace bpar
