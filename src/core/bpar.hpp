// B-Par public API — the single header downstream users include.
//
// Quickstart:
//
//   #include "core/bpar.hpp"
//
//   bpar::rnn::NetworkConfig cfg;
//   cfg.cell = bpar::rnn::CellType::kLstm;
//   cfg.input_size = 64; cfg.hidden_size = 128; cfg.num_layers = 4;
//   cfg.seq_length = 50; cfg.batch_size = 32; cfg.num_classes = 11;
//
//   bpar::Model model(cfg);
//   model.select_executor(bpar::ExecutorKind::kBPar, {.num_workers = 8,
//                                                     .num_replicas = 4});
//   for (auto& batch : batches) model.train_batch(batch);
//
// See examples/ for end-to-end programs and DESIGN.md for the system map.
#pragma once

#include <memory>
#include <string>

#include "exec/barrier_executor.hpp"
#include "exec/bpar_executor.hpp"
#include "exec/common_options.hpp"
#include "exec/bseq_executor.hpp"
#include "exec/executor.hpp"
#include "exec/sequential.hpp"
#include "rnn/batch.hpp"
#include "rnn/network.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace bpar {

[[nodiscard]] const char* version();

enum class ExecutorKind {
  kSequential,   // single-threaded reference
  kBPar,         // barrier-free task graph (the paper's contribution)
  kBSeq,         // data parallelism only
  kLayerBarrier  // per-layer barriers + intra-op parallelism
};

[[nodiscard]] const char* executor_kind_name(ExecutorKind kind);

/// The knobs every executor understands. This *is* exec::CommonOptions — a
/// single definition shared by all four executor kinds, so a default can
/// never silently diverge between paths (tests/test_executors.cpp asserts
/// this). Executor-specific structs embed it as their `.common` member.
using ExecutorOptions = exec::CommonOptions;

/// Creates an executor of the given kind bound to `net`.
[[nodiscard]] std::unique_ptr<exec::Executor> make_executor(
    ExecutorKind kind, rnn::Network& net, const ExecutorOptions& options = {});

/// Convenience wrapper owning a network, an executor, and an optimizer.
class Model {
 public:
  explicit Model(const rnn::NetworkConfig& config);

  [[nodiscard]] rnn::Network& network() { return net_; }
  [[nodiscard]] const rnn::NetworkConfig& config() const {
    return net_.config();
  }

  void select_executor(ExecutorKind kind, const ExecutorOptions& options = {});
  [[nodiscard]] exec::Executor& executor();

  void set_optimizer(std::unique_ptr<train::Optimizer> optimizer);
  [[nodiscard]] train::Optimizer& optimizer();

  /// Forward + backward + optimizer step. Returns the batch loss.
  exec::StepResult train_batch(const rnn::BatchData& batch);
  /// Forward only: loss, argmax predictions, optional logits.
  exec::InferResult infer(const rnn::BatchData& batch,
                          const exec::InferOptions& options = {});
  /// Forward only; optional argmax predictions copied into `predictions`.
  [[deprecated("use infer(batch) -> InferResult")]]
  exec::StepResult infer_batch(const rnn::BatchData& batch,
                               std::span<int> predictions = {});

  void save(const std::string& path) const;
  void load(const std::string& path);

  /// Full training checkpoint: weights + optimizer state. Resuming from a
  /// checkpoint continues training bit-exactly (tests/test_checkpoint.cpp).
  void save_checkpoint(const std::string& path) const;
  void load_checkpoint(const std::string& path);

 private:
  rnn::Network net_;
  std::unique_ptr<exec::Executor> executor_;
  std::unique_ptr<train::Optimizer> optimizer_;
};

}  // namespace bpar
