// Hardware performance counters via perf_event_open (Linux).
//
// Used to measure IPC / LLC misses for the Fig. 7 locality study and, when
// RuntimeOptions::sample_counters is on, to attribute counters to task
// classes by reading per-worker (thread-scope) counters around every task
// body. Containers frequently deny perf_event_open; in that case
// `PerfCounters::available()` is false and callers fall back to the
// simulator's cache model (see DESIGN.md §4).
//
// Five events are opened (cycles, instructions, LLC misses, cache
// references, branch misses). Hardware PMUs typically have fewer physical
// counters than that, so the kernel time-multiplexes the set; every event
// is opened with PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING and readings are
// scaled by time_enabled/time_running. The applied factor is reported in
// CounterSample::scale rather than silently under-counting.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace bpar::perf {

/// Index order of the events a PerfCounters instance opens.
enum CounterEvent : std::size_t {
  kCycles = 0,
  kInstructions,
  kLlcMisses,
  kCacheReferences,
  kBranchMisses,
  kNumCounterEvents,
};

struct CounterSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t branch_misses = 0;
  /// Largest time_enabled/time_running multiplexing correction already
  /// applied to the values above. 1.0 = every event was on a physical PMC
  /// for the whole interval; +inf = some event was never scheduled (its
  /// contribution is unknown and counted as 0).
  double scale = 1.0;

  [[nodiscard]] bool multiplexed() const { return scale > 1.001; }
  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  /// LLC misses per kilo-instruction.
  [[nodiscard]] double mpki() const {
    return instructions == 0 ? 0.0
                             : 1000.0 * static_cast<double>(llc_misses) /
                                   static_cast<double>(instructions);
  }
  /// Branch misses per kilo-instruction.
  [[nodiscard]] double branch_mpki() const {
    return instructions == 0 ? 0.0
                             : 1000.0 * static_cast<double>(branch_misses) /
                                   static_cast<double>(instructions);
  }
  /// LLC misses / cache references (0 when references were not counted).
  [[nodiscard]] double llc_miss_rate() const {
    return cache_references == 0
               ? 0.0
               : static_cast<double>(llc_misses) /
                     static_cast<double>(cache_references);
  }

  /// Accumulates `other` (per-class aggregation). Counts add; scale keeps
  /// the worst (largest) factor seen.
  CounterSample& operator+=(const CounterSample& other);
};

/// One raw cumulative reading of every open event (unscaled), used to form
/// interval deltas with counter_delta().
struct CounterReading {
  struct Event {
    std::uint64_t value = 0;
    std::uint64_t time_enabled = 0;
    std::uint64_t time_running = 0;
    bool open = false;
  };
  bool valid = false;
  std::array<Event, kNumCounterEvents> events{};
};

/// (end - begin) with each event's delta scaled by its own interval
/// enabled/running ratio; CounterSample::scale reports the largest factor.
/// An event whose running time did not advance contributes 0 and sets
/// scale to +inf when it was enabled (data lost, never silent).
[[nodiscard]] CounterSample counter_delta(const CounterReading& begin,
                                          const CounterReading& end);

enum class CounterScope {
  kProcess,  // this process, including threads spawned later (inherit)
  kThread,   // the calling thread only (per-worker task slicing)
};

class PerfCounters {
 public:
  explicit PerfCounters(CounterScope scope = CounterScope::kProcess);
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True if the core trio (cycles, instructions, LLC misses) opened.
  /// cache references / branch misses are best-effort extras: when their
  /// events could not be opened they simply read 0.
  [[nodiscard]] bool available() const { return available_; }

  void start();
  /// Stops counting and returns the (multiplex-scaled) deltas since
  /// start(); nullopt when counters are unavailable.
  std::optional<CounterSample> stop();

  /// Raw cumulative reading without stopping — pair with counter_delta()
  /// to slice one running session into per-task intervals.
  [[nodiscard]] CounterReading read() const;

 private:
  std::array<int, kNumCounterEvents> fds_{};
  CounterReading start_reading_{};
  bool available_ = false;
};

}  // namespace bpar::perf
