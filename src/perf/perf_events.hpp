// Hardware performance counters via perf_event_open (Linux).
//
// Used to measure IPC and LLC misses for the Fig. 7 locality study when the
// kernel allows it. Containers frequently deny perf_event_open; in that
// case `PerfCounters::available()` is false and callers fall back to the
// simulator's cache model (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <optional>

namespace bpar::perf {

struct CounterSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  [[nodiscard]] double mpki() const {
    return instructions == 0 ? 0.0
                             : 1000.0 * static_cast<double>(llc_misses) /
                                   static_cast<double>(instructions);
  }
};

class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True if all three counters opened successfully.
  [[nodiscard]] bool available() const { return available_; }

  void start();
  /// Stops counting and returns the deltas since start(); nullopt when
  /// counters are unavailable.
  std::optional<CounterSample> stop();

 private:
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_llc_misses_ = -1;
  bool available_ = false;
};

}  // namespace bpar::perf
