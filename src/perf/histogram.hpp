// Compatibility alias: the histogram implementation lives in obs (one
// binning implementation for Fig. 7 and the metrics registry — see
// obs/histogram.hpp); perf code keeps spelling it perf::Histogram.
#pragma once

#include "obs/histogram.hpp"

namespace bpar::perf {

using Histogram = ::bpar::obs::Histogram;

}  // namespace bpar::perf
