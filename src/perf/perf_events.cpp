#include "perf/perf_events.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace bpar::perf {

CounterSample& CounterSample::operator+=(const CounterSample& other) {
  cycles += other.cycles;
  instructions += other.instructions;
  llc_misses += other.llc_misses;
  cache_references += other.cache_references;
  branch_misses += other.branch_misses;
  scale = std::max(scale, other.scale);
  return *this;
}

CounterSample counter_delta(const CounterReading& begin,
                            const CounterReading& end) {
  CounterSample sample;
  if (!begin.valid || !end.valid) return sample;
  std::uint64_t scaled[kNumCounterEvents] = {};
  for (std::size_t i = 0; i < kNumCounterEvents; ++i) {
    const CounterReading::Event& b = begin.events[i];
    const CounterReading::Event& e = end.events[i];
    if (!b.open || !e.open) continue;
    const std::uint64_t dv = e.value - b.value;
    const std::uint64_t de = e.time_enabled - b.time_enabled;
    const std::uint64_t dr = e.time_running - b.time_running;
    if (dr == 0) {
      // The event never reached a physical PMC during the interval: its
      // count is unknown. Contribute 0 but flag the loss.
      if (de > 0) sample.scale = std::numeric_limits<double>::infinity();
      continue;
    }
    const double factor = static_cast<double>(de) / static_cast<double>(dr);
    scaled[i] = static_cast<std::uint64_t>(static_cast<double>(dv) * factor);
    sample.scale = std::max(sample.scale, factor);
  }
  sample.cycles = scaled[kCycles];
  sample.instructions = scaled[kInstructions];
  sample.llc_misses = scaled[kLlcMisses];
  sample.cache_references = scaled[kCacheReferences];
  sample.branch_misses = scaled[kBranchMisses];
  return sample;
}

#if defined(__linux__)
namespace {

int open_counter(std::uint32_t type, std::uint64_t config,
                 CounterScope scope) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Multiplexing bookkeeping: the kernel reports how long the event was
  // enabled vs. actually counting, which is what scales partial counts.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  // Process scope counts workers spawned later via inherit; thread scope
  // confines the event to the calling thread (per-worker task slicing).
  attr.inherit = scope == CounterScope::kProcess ? 1 : 0;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

constexpr struct {
  std::uint32_t type;
  std::uint64_t config;
} kEventSpecs[kNumCounterEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

}  // namespace

PerfCounters::PerfCounters(CounterScope scope) {
  for (std::size_t i = 0; i < kNumCounterEvents; ++i) {
    fds_[i] = open_counter(kEventSpecs[i].type, kEventSpecs[i].config, scope);
  }
  available_ = fds_[kCycles] >= 0 && fds_[kInstructions] >= 0 &&
               fds_[kLlcMisses] >= 0;
}

PerfCounters::~PerfCounters() {
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

void PerfCounters::start() {
  if (!available_) return;
  for (const int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
  start_reading_ = read();
}

CounterReading PerfCounters::read() const {
  CounterReading reading;
  if (!available_) return reading;
  for (std::size_t i = 0; i < kNumCounterEvents; ++i) {
    if (fds_[i] < 0) continue;
    // read_format layout: value, time_enabled, time_running.
    std::uint64_t buf[3] = {0, 0, 0};
    if (::read(fds_[i], buf, sizeof buf) != sizeof buf) continue;
    reading.events[i] = {buf[0], buf[1], buf[2], /*open=*/true};
  }
  reading.valid = true;
  return reading;
}

std::optional<CounterSample> PerfCounters::stop() {
  if (!available_) return std::nullopt;
  const CounterReading end = read();
  for (const int fd : fds_) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
  return counter_delta(start_reading_, end);
}

#else  // !__linux__

PerfCounters::PerfCounters(CounterScope) { fds_.fill(-1); }
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
CounterReading PerfCounters::read() const { return {}; }
std::optional<CounterSample> PerfCounters::stop() { return std::nullopt; }

#endif

}  // namespace bpar::perf
