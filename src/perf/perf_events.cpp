#include "perf/perf_events.hpp"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace bpar::perf {

#if defined(__linux__)
namespace {

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // count child threads (the runtime's workers)
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

std::uint64_t read_counter(int fd) {
  std::uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof value) != sizeof value) value = 0;
  return value;
}

}  // namespace

PerfCounters::PerfCounters() {
  fd_cycles_ = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  fd_instructions_ =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fd_llc_misses_ =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  available_ =
      fd_cycles_ >= 0 && fd_instructions_ >= 0 && fd_llc_misses_ >= 0;
}

PerfCounters::~PerfCounters() {
  for (const int fd : {fd_cycles_, fd_instructions_, fd_llc_misses_}) {
    if (fd >= 0) close(fd);
  }
}

void PerfCounters::start() {
  if (!available_) return;
  for (const int fd : {fd_cycles_, fd_instructions_, fd_llc_misses_}) {
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

std::optional<CounterSample> PerfCounters::stop() {
  if (!available_) return std::nullopt;
  for (const int fd : {fd_cycles_, fd_instructions_, fd_llc_misses_}) {
    ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
  CounterSample sample;
  sample.cycles = read_counter(fd_cycles_);
  sample.instructions = read_counter(fd_instructions_);
  sample.llc_misses = read_counter(fd_llc_misses_);
  return sample;
}

#else  // !__linux__

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
std::optional<CounterSample> PerfCounters::stop() { return std::nullopt; }

#endif

}  // namespace bpar::perf
