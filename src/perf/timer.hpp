// Wall-clock timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace bpar::perf {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bpar::perf
