#include "perf/gpu_model.hpp"

#include "util/check.hpp"

namespace bpar::perf {

GpuModelParams keras_v100() {
  // base: Table III row 256/256/1/2 ≈ 24.5 ms with negligible compute.
  // launch: rows 256/256/1/{10,100} grow ~0.57 ms per step over 12
  // layer-direction cells → ~47 us per cell.
  return {.base_ms = 23.0,
          .per_cell_launch_ms = 0.047,
          .peak_tflops = 12.0,
          .saturation_bh = 76000.0,
          .hang_above_params = 0.0};
}

GpuModelParams pytorch_v100() {
  // launch: rows 256/256/1/{10,100} grow ~5 ms per step → ~0.42 ms per
  // cell. Hangs above ~90M parameters (paper leaves those cells empty).
  return {.base_ms = 22.5,
          .per_cell_launch_ms = 0.42,
          .peak_tflops = 12.0,
          .saturation_bh = 76000.0,
          .hang_above_params = 90.0e6};
}

double brnn_param_count(const GpuWorkload& w) {
  // Per direction, layer 0: gates * H * (I + H + 1). Deeper layers consume
  // an H-wide merged output (sum/average merge) — this reproduces the
  // paper's Table III/IV parameter counts exactly (e.g. 6.3M for the
  // 256/256 6-layer BLSTM).
  const double h = w.hidden_size;
  const double first = w.gates * h * (w.input_size + h + 1);
  const double deeper = w.gates * h * (h + h + 1);
  return 2.0 * (first + (w.layers - 1) * deeper);
}

std::optional<double> gpu_batch_time_ms(const GpuModelParams& params,
                                        const GpuWorkload& w) {
  BPAR_CHECK(w.layers > 0 && w.seq_length > 0 && w.batch_size > 0,
             "bad GPU workload");
  const double param_count = brnn_param_count(w);
  if (params.hang_above_params > 0.0 &&
      param_count > params.hang_above_params) {
    return std::nullopt;
  }

  const double cells =
      static_cast<double>(w.layers) * 2.0 * w.seq_length;  // per direction
  const double launch_ms = cells * params.per_cell_launch_ms;

  // Gate GEMM flops: 2 * B * (gates*H) * (in + H) per cell, where `in` is
  // the raw input at layer 0 and the H-wide merged output above (matching
  // the paper's parameter accounting).
  const double h = w.hidden_size;
  double flops = 0.0;
  for (int layer = 0; layer < w.layers; ++layer) {
    const double in = layer == 0 ? w.input_size : h;
    flops += 2.0 * w.batch_size * (w.gates * h) * (in + h) * 2.0 *
             w.seq_length;  // 2 directions
  }
  if (w.training) flops *= 3.0;  // backward ≈ 2x forward

  const double bh = static_cast<double>(w.batch_size) * h;
  const double eff_tflops =
      params.peak_tflops * bh / (bh + params.saturation_bh);
  const double compute_ms = flops / (eff_tflops * 1e12) * 1e3;

  return params.base_ms + launch_ms + compute_ms;
}

}  // namespace bpar::perf
