// Analytic V100 cost model for the GPU columns of Tables III/IV.
//
// We have no GPU (see DESIGN.md §4), so the K-GPU / P-GPU entries are
// produced by a two-term model calibrated against the paper's own numbers:
//
//   time = framework_base                      (session/dispatch floor)
//        + n_cells * per_cell_launch           (kernel-launch latency term)
//        + training_flops / eff_throughput(B,H)  (GEMM throughput term)
//
// with eff_throughput saturating toward the card's peak as batch*hidden
// grows (small batches leave the GPU latency-bound — exactly the regime
// where the paper shows B-Par on CPUs winning). The PyTorch profile has a
// ~10x higher launch term and, like the paper ("executions often hung"),
// reports no result above ~90 M parameters.
#pragma once

#include <optional>

namespace bpar::perf {

struct GpuModelParams {
  double base_ms = 0.0;             // fixed per-batch framework overhead
  double per_cell_launch_ms = 0.0;  // per (layer, direction, timestep) cell
  double peak_tflops = 0.0;         // asymptotic fp32 GEMM throughput
  double saturation_bh = 0.0;       // batch*hidden at half of peak
  double hang_above_params = 0.0;   // 0 = never hangs
};

/// Calibrated profiles for the paper's Tesla V100 SXM2 setup.
[[nodiscard]] GpuModelParams keras_v100();
[[nodiscard]] GpuModelParams pytorch_v100();

struct GpuWorkload {
  int gates = 4;  // 4 for LSTM, 3 for GRU
  int input_size = 0;
  int hidden_size = 0;
  int batch_size = 0;
  int seq_length = 0;
  int layers = 0;
  bool training = true;  // training ≈ 3x forward flops (fwd + bwd + update)
};

/// Trainable-parameter count of the bidirectional model (for hang check).
[[nodiscard]] double brnn_param_count(const GpuWorkload& w);

/// Modeled single-batch time in ms; nullopt when the profile "hangs"
/// (matching the dashes in Tables III/IV).
[[nodiscard]] std::optional<double> gpu_batch_time_ms(
    const GpuModelParams& params, const GpuWorkload& w);

}  // namespace bpar::perf
