#include "sim/machine.hpp"

namespace bpar::sim {

MachineModel xeon8160_dual_socket() {
  return MachineModel{};  // defaults encode Table I
}

}  // namespace bpar::sim
