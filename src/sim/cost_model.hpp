// Per-task cost assignment for the simulator.
//
// Costs come from one of two sources:
//  * measured — a real (threaded or sequential) run of the very same task
//    graph on this machine records per-task durations; or
//  * modeled — a roofline estimate from the task's declared flops and
//    working-set bytes, calibrated against this machine's measured GEMM
//    throughput (see `calibrate`). Used when the full-size configuration is
//    too large to execute within the harness budget.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "taskrt/task_graph.hpp"

namespace bpar::sim {

struct Calibration {
  /// Sustained single-core fp32 GEMM throughput of this host.
  double gflops = 4.0;
  /// Sustained single-core memory streaming bandwidth (DRAM).
  double mem_gbps = 8.0;
  /// Effective bandwidth for a task's working set, assuming shared weights
  /// are mostly L2/L3-resident across the unrolled chain (the DRAM-vs-cache
  /// split is refined further by the simulator's locality model). Bounds
  /// the throughput of low-arithmetic-intensity tasks, e.g. batch-1 cells.
  double cache_gbps = 50.0;
  /// Fixed per-task body overhead (function call, loop setup).
  double fixed_ns = 300.0;
};

/// Measures the host's single-core GEMM throughput and stream bandwidth
/// with short self-timed loops (~50 ms total).
[[nodiscard]] Calibration calibrate();

/// cost = max(flops-bound, bytes-bound) + fixed.
[[nodiscard]] std::uint64_t roofline_cost_ns(double flops, std::size_t bytes,
                                             const Calibration& cal);

/// Costs for every task in `graph` from its spec (flops / working set),
/// falling back to spec.cost_hint_ns when flops == 0.
[[nodiscard]] std::vector<std::uint64_t> modeled_costs(
    const taskrt::TaskGraph& graph, const Calibration& cal);

/// Per-task costs taken from a real run's durations, with zero entries
/// (tasks too fast to time) replaced by the modeled estimate.
[[nodiscard]] std::vector<std::uint64_t> measured_costs(
    const taskrt::TaskGraph& graph, std::span<const std::uint64_t> durations,
    const Calibration& cal);

}  // namespace bpar::sim
