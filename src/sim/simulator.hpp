// Discrete-event simulator: executes a TaskGraph on P virtual cores.
//
// This is the hardware substitution documented in DESIGN.md §4 — the
// harness machine has a single physical core, so multi-core scalability
// numbers are produced by replaying the *exact* task DAG (same dependency
// edges, same scheduler policies as taskrt::Runtime) on a modeled
// dual-socket Xeon (sim::MachineModel), with per-task costs either measured
// from real single-core execution of the same task bodies or derived from
// the roofline cost model.
//
// The simulator also produces the cache-behaviour proxies of the Fig. 7
// study: per-socket L3 residency decides whether a consumer task finds its
// producer's output cache-hot (discounted cost, high IPC, low MPKI) or has
// to stream from DRAM / the remote socket (NUMA penalty).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "perf/histogram.hpp"
#include "sim/machine.hpp"
#include "taskrt/runtime.hpp"
#include "taskrt/task_graph.hpp"

namespace bpar::sim {

struct SimOptions {
  MachineModel machine;
  taskrt::SchedulerPolicy policy = taskrt::SchedulerPolicy::kFifo;
  int cores = 0;  // 0 → machine.cores
  /// Record per-task (start, end, core) tuples — exportable with
  /// taskrt::write_chrome_trace to visualize the simulated schedule.
  bool record_trace = false;
};

struct KindBreakdown {
  std::size_t count = 0;
  double total_ms = 0.0;
};

struct SimResult {
  double makespan_ms = 0.0;
  double total_busy_ms = 0.0;
  double parallel_efficiency = 0.0;  // busy / (cores * makespan)
  int cores = 0;

  int max_concurrency = 0;
  double avg_concurrency = 0.0;  // time-weighted mean of running tasks

  std::size_t tasks = 0;
  std::size_t tasks_with_affinity = 0;
  std::size_t locality_hits = 0;       // ran on their producer's core
  std::size_t cache_hot_tasks = 0;     // primary input L3-resident at start
  std::size_t numa_remote_tasks = 0;   // primary input on the other socket

  double avg_ipc = 0.0;   // time-weighted
  double avg_mpki = 0.0;  // time-weighted
  perf::Histogram ipc_hist{{0.5, 1.0, 1.5, 2.0}};
  perf::Histogram mpki_hist{{10.0, 20.0, 30.0}};

  double peak_working_set_bytes = 0.0;  // max over time of sum of running WS
  double avg_working_set_bytes = 0.0;   // time-weighted

  std::vector<KindBreakdown> by_kind;  // indexed by TaskKind value

  /// Simulated schedule (empty unless SimOptions::record_trace).
  std::vector<taskrt::TaskTrace> trace;

  [[nodiscard]] double locality_hit_rate() const {
    return tasks_with_affinity == 0
               ? 0.0
               : static_cast<double>(locality_hits) /
                     static_cast<double>(tasks_with_affinity);
  }
};

class Simulator {
 public:
  explicit Simulator(SimOptions options);

  /// Simulates `graph` with the given per-task costs (ns, one per task).
  [[nodiscard]] SimResult run(const taskrt::TaskGraph& graph,
                              std::span<const std::uint64_t> cost_ns) const;

 private:
  SimOptions options_;
};

}  // namespace bpar::sim
