#include "sim/simulator.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <set>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace bpar::sim {

using taskrt::kInvalidTask;
using taskrt::SchedulerPolicy;
using taskrt::TaskGraph;
using taskrt::TaskId;

namespace {

struct Completion {
  std::uint64_t time_ns;
  int core;
  TaskId task;
  bool operator>(const Completion& other) const {
    return time_ns > other.time_ns;
  }
};

constexpr std::size_t kNumKinds = taskrt::kNumTaskKinds;

}  // namespace

Simulator::Simulator(SimOptions options) : options_(options) {
  if (options_.cores <= 0) options_.cores = options_.machine.cores;
  BPAR_CHECK(options_.cores >= 1, "need at least one core");
}

SimResult Simulator::run(const TaskGraph& graph,
                         std::span<const std::uint64_t> cost_ns) const {
  BPAR_SPAN("sim.run");
  BPAR_CHECK(cost_ns.size() == graph.size(), "cost vector size mismatch");
  const MachineModel& mach = options_.machine;
  const int cores = options_.cores;
  const int sockets = mach.sockets_used(cores);
  const bool locality = options_.policy == SchedulerPolicy::kLocalityAware;

  SimResult result;
  result.cores = cores;
  result.tasks = graph.size();
  result.by_kind.assign(kNumKinds, {});
  if (options_.record_trace) result.trace.assign(graph.size(), {});
  if (graph.empty()) return result;

  // Per-task execution metadata.
  std::vector<std::uint32_t> pending(graph.size());
  std::vector<std::int32_t> preferred_core(graph.size(), -1);
  std::vector<std::int32_t> exec_core(graph.size(), -1);
  // Per-socket monotonically increasing bytes-touched counter; a producer's
  // output is still L3-resident iff fewer than L3-size bytes were touched on
  // that socket since the producer finished.
  std::vector<double> socket_bytes(static_cast<std::size_t>(sockets), 0.0);
  std::vector<double> touch_pos(graph.size(), 0.0);

  std::deque<TaskId> global_queue;
  std::vector<std::deque<TaskId>> local_queues(
      static_cast<std::size_t>(cores));
  std::set<int> free_cores;
  // Longest-idle-first order for FIFO pairing: models "any idle worker
  // grabs the next ready task" without the artificial producer-core bias a
  // lowest-id policy would create.
  std::deque<int> idle_order;
  for (int c = 0; c < cores; ++c) {
    free_cores.insert(c);
    idle_order.push_back(c);
  }

  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      events;

  for (TaskId id = 0; id < graph.size(); ++id) {
    pending[id] = graph.task(id).num_deps;
    if (graph.task(id).affinity_pred != kInvalidTask) {
      ++result.tasks_with_affinity;
    }
    if (pending[id] == 0) global_queue.push_back(id);
  }

  std::uint64_t now_ns = 0;
  std::uint64_t last_event_ns = 0;
  int running = 0;
  double running_ws = 0.0;
  double concurrency_integral = 0.0;  // ∫ running dt
  double ws_integral = 0.0;           // ∫ running_ws dt
  double busy_ns_total = 0.0;
  double ipc_time_weighted = 0.0;
  double mpki_time_weighted = 0.0;

  auto enqueue_ready = [&](TaskId id) {
    if (locality && preferred_core[id] >= 0) {
      local_queues[static_cast<std::size_t>(preferred_core[id])].push_back(id);
    } else {
      global_queue.push_back(id);
    }
  };

  auto pick_for_core = [&](int core) -> TaskId {
    auto& local = local_queues[static_cast<std::size_t>(core)];
    if (!local.empty()) {
      const TaskId id = local.front();
      local.pop_front();
      return id;
    }
    if (!global_queue.empty()) {
      const TaskId id = global_queue.front();
      global_queue.pop_front();
      return id;
    }
    // Steal from the longest sibling queue, but never its last entry —
    // that one stays reserved for its (cache-hot) owner. Mirrors
    // taskrt::Runtime.
    std::size_t victim = local_queues.size();
    std::size_t best_len = 1;
    for (std::size_t w = 0; w < local_queues.size(); ++w) {
      if (static_cast<int>(w) == core) continue;
      if (local_queues[w].size() > best_len) {
        best_len = local_queues[w].size();
        victim = w;
      }
    }
    if (victim == local_queues.size()) return kInvalidTask;
    const TaskId id = local_queues[victim].front();
    local_queues[victim].pop_front();
    return id;
  };

  std::vector<int> running_on_socket(static_cast<std::size_t>(sockets), 0);

  auto start_task = [&](TaskId id, int core) {
    const taskrt::Task& t = graph.task(id);
    const int socket = mach.socket_of(core);
    double cost = static_cast<double>(cost_ns[id]) + mach.dispatch_overhead_ns;

    // Optional bandwidth-contention model: concurrent tasks beyond the
    // socket's saturation point slow each other down.
    if (mach.bw_contention_factor > 0.0) {
      const int excess = running_on_socket[static_cast<std::size_t>(socket)] -
                         mach.bw_saturation_cores;
      if (excess > 0) {
        cost *= 1.0 + mach.bw_contention_factor * excess /
                          mach.bw_saturation_cores;
      }
    }

    // Cache / NUMA adjustment from the primary input's producer.
    double resident_fraction = 0.0;
    bool remote = false;
    const TaskId pred = t.affinity_pred;
    if (pred != kInvalidTask && exec_core[pred] >= 0) {
      const int pred_socket = mach.socket_of(exec_core[pred]);
      if (pred_socket != socket && pred_socket < sockets) {
        remote = true;
      } else {
        const double touched_since =
            socket_bytes[static_cast<std::size_t>(socket)] - touch_pos[pred];
        const double l3 = static_cast<double>(mach.l3_bytes_per_socket);
        resident_fraction = std::clamp(1.0 - touched_since / l3, 0.0, 1.0);
      }
      if (exec_core[pred] == core) ++result.locality_hits;
    }
    if (remote) {
      cost *= mach.numa_remote_penalty;
      ++result.numa_remote_tasks;
    } else if (resident_fraction > 0.0) {
      cost *= 1.0 - (1.0 - mach.cache_hot_discount) * resident_fraction;
      if (resident_fraction > 0.5) ++result.cache_hot_tasks;
    }

    // IPC / MPKI proxies for the Fig. 7 histograms (time-weighted).
    const double ipc =
        mach.ipc_cold + (mach.ipc_hot - mach.ipc_cold) * resident_fraction;
    const double instructions = cost * mach.clock_ghz * ipc;
    const double line_bytes = static_cast<double>(mach.cache_line_bytes);
    const double ws = static_cast<double>(t.spec.working_set_bytes);
    const double misses = (ws / line_bytes) * mach.streaming_passes *
                          (1.0 - 0.9 * resident_fraction) *
                          (remote ? 1.15 : 1.0);
    const double mpki =
        instructions <= 0.0 ? 0.0 : 1000.0 * misses / instructions;
    result.ipc_hist.add(ipc, cost);
    result.mpki_hist.add(mpki, cost);
    ipc_time_weighted += ipc * cost;
    mpki_time_weighted += mpki * cost;

    exec_core[id] = core;
    ++running_on_socket[static_cast<std::size_t>(socket)];
    ++running;
    running_ws += ws;
    result.max_concurrency = std::max(result.max_concurrency, running);
    result.peak_working_set_bytes =
        std::max(result.peak_working_set_bytes, running_ws);
    busy_ns_total += cost;
    auto& kind = result.by_kind[static_cast<std::size_t>(t.spec.kind)];
    ++kind.count;
    kind.total_ms += cost / 1e6;

    const std::uint64_t finish_ns = now_ns + static_cast<std::uint64_t>(cost);
    if (options_.record_trace) {
      result.trace[id] = {now_ns, finish_ns, core};
    }
    events.push({finish_ns, core, id});
  };

  std::size_t completed = 0;
  for (;;) {
    if (locality) {
      // Locality-aware: each free core serves its own queue first, then
      // the global queue, then (restrained) stealing.
      for (auto it = free_cores.begin(); it != free_cores.end();) {
        const int core = *it;
        const TaskId id = pick_for_core(core);
        if (id == kInvalidTask) {
          ++it;
          continue;
        }
        it = free_cores.erase(it);
        start_task(id, core);
      }
    } else {
      // FIFO: pair the oldest ready task with the longest-idle core.
      while (!global_queue.empty() && !idle_order.empty()) {
        const int core = idle_order.front();
        idle_order.pop_front();
        free_cores.erase(core);
        const TaskId id = global_queue.front();
        global_queue.pop_front();
        start_task(id, core);
      }
    }
    if (events.empty()) break;

    const Completion done = events.top();
    events.pop();
    // Integrate time-weighted metrics over [last_event, done.time].
    const double dt = static_cast<double>(done.time_ns - last_event_ns);
    concurrency_integral += dt * running;
    ws_integral += dt * running_ws;
    last_event_ns = done.time_ns;
    now_ns = done.time_ns;

    const taskrt::Task& t = graph.task(done.task);
    --running;
    running_ws -= static_cast<double>(t.spec.working_set_bytes);
    ++completed;
    const int socket = mach.socket_of(done.core);
    --running_on_socket[static_cast<std::size_t>(socket)];
    socket_bytes[static_cast<std::size_t>(socket)] +=
        static_cast<double>(t.spec.working_set_bytes);
    touch_pos[done.task] = socket_bytes[static_cast<std::size_t>(socket)];
    free_cores.insert(done.core);
    if (!locality) idle_order.push_back(done.core);

    for (const TaskId succ : t.successors) {
      if (locality && graph.task(succ).affinity_pred == done.task) {
        preferred_core[succ] = done.core;
      }
      BPAR_DCHECK(pending[succ] > 0);
      if (--pending[succ] == 0) enqueue_ready(succ);
    }
  }

  BPAR_CHECK(completed == graph.size(),
             "simulation deadlock: completed ", completed, " of ",
             graph.size());

  result.makespan_ms = static_cast<double>(now_ns) / 1e6;
  result.total_busy_ms = busy_ns_total / 1e6;
  result.parallel_efficiency =
      now_ns == 0 ? 0.0
                  : busy_ns_total / (static_cast<double>(now_ns) * cores);
  result.avg_concurrency =
      now_ns == 0 ? 0.0 : concurrency_integral / static_cast<double>(now_ns);
  result.avg_working_set_bytes =
      now_ns == 0 ? 0.0 : ws_integral / static_cast<double>(now_ns);
  result.avg_ipc = busy_ns_total == 0.0 ? 0.0 : ipc_time_weighted / busy_ns_total;
  result.avg_mpki =
      busy_ns_total == 0.0 ? 0.0 : mpki_time_weighted / busy_ns_total;
  return result;
}

}  // namespace bpar::sim
