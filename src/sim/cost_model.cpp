#include "sim/cost_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>

#include "kernels/gemm.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace bpar::sim {
namespace {

double time_once_ns(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Calibration calibrate() {
  Calibration cal;

  // GEMM throughput: a 128x512x512 gemm_nt resembles one gate-block update.
  {
    constexpr int m = 128;
    constexpr int n = 512;
    constexpr int k = 512;
    tensor::Matrix a(m, k);
    tensor::Matrix b(n, k);
    tensor::Matrix c(m, n);
    util::Rng rng(7);
    tensor::fill_uniform(a.view(), rng, -1.0F, 1.0F);
    tensor::fill_uniform(b.view(), rng, -1.0F, 1.0F);
    kernels::gemm_nt(a.cview(), b.cview(), c.view());  // warm-up
    double best_ns = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
      best_ns = std::min(best_ns, time_once_ns([&] {
                           kernels::gemm_nt(a.cview(), b.cview(), c.view());
                         }));
    }
    cal.gflops = kernels::gemm_flops(m, n, k) / best_ns;  // flops/ns = Gflop/s
  }

  // Stream bandwidth: a large copy-scale pass (well beyond L2).
  {
    constexpr std::size_t n = 4UL << 20;  // 4 Mi floats = 16 MB
    std::vector<float> src(n, 1.5F);
    std::vector<float> dst(n, 0.0F);
    double best_ns = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
      best_ns = std::min(best_ns, time_once_ns([&] {
                           for (std::size_t i = 0; i < n; ++i) {
                             dst[i] = 2.0F * src[i] + dst[i];
                           }
                         }));
    }
    // 3 accesses (2 loads + 1 store) of 4 bytes per element.
    cal.mem_gbps = 3.0 * 4.0 * static_cast<double>(n) / best_ns;
  }

  BPAR_LOG_DEBUG << "calibration: " << cal.gflops << " Gflop/s, "
                 << cal.mem_gbps << " GB/s";
  return cal;
}

std::uint64_t roofline_cost_ns(double flops, std::size_t bytes,
                               const Calibration& cal) {
  const double compute_ns = flops / cal.gflops;
  const double memory_ns = static_cast<double>(bytes) / cal.cache_gbps;
  return static_cast<std::uint64_t>(std::max(compute_ns, memory_ns) +
                                    cal.fixed_ns);
}

std::vector<std::uint64_t> modeled_costs(const taskrt::TaskGraph& graph,
                                         const Calibration& cal) {
  BPAR_SPAN("sim.modeled_costs");
  std::vector<std::uint64_t> costs(graph.size());
  for (taskrt::TaskId id = 0; id < graph.size(); ++id) {
    const auto& spec = graph.task(id).spec;
    if (spec.flops > 0.0 || spec.working_set_bytes > 0) {
      costs[id] = roofline_cost_ns(spec.flops, spec.working_set_bytes, cal);
    } else {
      costs[id] = std::max<std::uint64_t>(spec.cost_hint_ns,
                                          static_cast<std::uint64_t>(cal.fixed_ns));
    }
  }
  return costs;
}

std::vector<std::uint64_t> measured_costs(
    const taskrt::TaskGraph& graph, std::span<const std::uint64_t> durations,
    const Calibration& cal) {
  BPAR_CHECK(durations.size() == graph.size(), "durations size mismatch");
  std::vector<std::uint64_t> costs(durations.begin(), durations.end());
  for (taskrt::TaskId id = 0; id < graph.size(); ++id) {
    if (costs[id] == 0) {
      const auto& spec = graph.task(id).spec;
      costs[id] = roofline_cost_ns(spec.flops, spec.working_set_bytes, cal);
    }
  }
  return costs;
}

}  // namespace bpar::sim
