// Machine model for the discrete-event simulator.
//
// Mirrors the paper's CPU platform (Table I): dual-socket Intel Xeon
// Platinum 8160, 24 cores per socket, 33 MB shared L3 per socket. The
// parameters below drive the cost adjustments the simulator applies on top
// of measured/modeled task costs: NUMA penalties when a consumer runs on a
// different socket than its producer, a cache-hot discount when it runs on
// the same core while the data is still L3-resident, and the IPC / MPKI
// proxies of the Fig. 7 study.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bpar::sim {

struct MachineModel {
  int cores = 48;
  int cores_per_socket = 24;
  double clock_ghz = 2.1;

  std::size_t l3_bytes_per_socket = 33792UL * 1024UL;  // 33 MB (Table I)
  std::size_t cache_line_bytes = 64;

  /// Cost multiplier when a task's primary input lives on the other socket.
  double numa_remote_penalty = 1.35;
  /// Cost multiplier when the primary input is still L3-resident on the
  /// executing socket (locality-aware scheduling's win; the paper reports a
  /// ~20% average batch-time reduction).
  double cache_hot_discount = 0.78;
  /// Per-task dispatch/scheduling overhead added to every task.
  double dispatch_overhead_ns = 2000.0;

  /// IPC proxy when the working set streams from DRAM vs when it hits L3.
  double ipc_cold = 0.7;
  double ipc_hot = 1.9;
  /// How many times a task's working set is re-streamed during its GEMMs
  /// when it does not fit in cache (drives the MPKI proxy of Fig. 7).
  double streaming_passes = 20.0;

  /// Optional per-socket memory-bandwidth contention model (the effect
  /// ParaX [17] targets): when more than `bw_saturation_cores` tasks run
  /// concurrently on a socket, each additional task inflates their cost.
  /// cost *= 1 + bw_contention_factor * excess / bw_saturation_cores.
  /// Disabled (0.0) by default — the paper-reproduction benches calibrate
  /// without it; enable to study contention sensitivity.
  double bw_contention_factor = 0.0;
  int bw_saturation_cores = 8;

  [[nodiscard]] int socket_of(int core) const { return core / cores_per_socket; }
  [[nodiscard]] int sockets_used(int active_cores) const {
    return (active_cores + cores_per_socket - 1) / cores_per_socket;
  }
};

/// The paper's experimental platform (Table I).
[[nodiscard]] MachineModel xeon8160_dual_socket();

}  // namespace bpar::sim
