// Diagnostics exports for task graphs and executions:
//  * Graphviz DOT of a TaskGraph (colored by task kind, grouped by layer),
//    like the paper's Fig. 2 dependency diagrams;
//  * Chrome-tracing JSON ("chrome://tracing" / Perfetto) of a recorded
//    RunStats trace, one row per worker.
#pragma once

#include <functional>
#include <iosfwd>
#include <span>
#include <string>

#include "obs/analysis.hpp"
#include "obs/trace_export.hpp"
#include "taskrt/runtime.hpp"
#include "taskrt/task_graph.hpp"

namespace bpar::taskrt {

struct DotOptions {
  /// Cap on emitted tasks (large graphs become unreadable); 0 = no cap.
  std::size_t max_tasks = 2000;
  bool include_names = true;
};

/// Writes the graph in Graphviz DOT format.
void write_dot(const TaskGraph& graph, std::ostream& os,
               const DotOptions& options = {});
void write_dot_file(const TaskGraph& graph, const std::string& path,
                    const DotOptions& options = {});

/// Writes a Chrome-tracing JSON document from per-task (start, end,
/// worker) tuples — one per task in `graph` (works for real executions and
/// for simulated schedules alike).
void write_chrome_trace(const TaskGraph& graph,
                        std::span<const TaskTrace> trace, std::ostream& os);

/// Convenience overload for a run recorded with
/// RuntimeOptions::record_trace.
void write_chrome_trace(const TaskGraph& graph, const RunStats& stats,
                        std::ostream& os);
void write_chrome_trace_file(const TaskGraph& graph, const RunStats& stats,
                             const std::string& path);

/// One merged chrome-trace document: fully named task slices from a
/// recorded RunStats trace (one row per worker) plus every obs span,
/// counter, and instant collected so far (one row per recording thread) on
/// a single shared timeline. Requires record_trace; spans require tracing
/// to have been enabled during the run.
void write_unified_trace(const TaskGraph& graph, const RunStats& stats,
                         std::ostream& os);
void write_unified_trace_file(const TaskGraph& graph, const RunStats& stats,
                              const std::string& path);

/// Hook for callers that hold event sources outside the obs rings (the
/// serving engine's per-request stage log): invoked after the standard rows
/// are written, with the writer and the export base so extra events land on
/// the shared timeline. Absolute steady-clock timestamps minus `base_ns`
/// line up with everything else.
using ExtraTraceEmitter =
    std::function<void(obs::ChromeTraceWriter& writer, std::uint64_t base_ns)>;

void write_unified_trace(const TaskGraph& graph, const RunStats& stats,
                         std::ostream& os, const ExtraTraceEmitter& extra);
void write_unified_trace_file(const TaskGraph& graph, const RunStats& stats,
                              const std::string& path,
                              const ExtraTraceEmitter& extra);

/// Direct predecessor lists, reconstructed by inverting the graph's
/// successor edges. Index = TaskId.
[[nodiscard]] std::vector<std::vector<TaskId>> predecessor_lists(
    const TaskGraph& graph);

/// Builds an analysis TraceModel from a recorded run: tasks with measured
/// timing + declared deps + worker placement, park/fault spans harvested
/// from the obs rings ("worker N" threads), and the runtime's scheduler
/// counters for cross-checking. Requires record_trace.
[[nodiscard]] obs::analysis::TraceModel make_trace_model(
    const TaskGraph& graph, const RunStats& stats);

/// Same, from a bare (start, end, worker) tuple span — how simulated
/// B-Par schedules (sim::SimResult::trace) become analyzable. No spans or
/// counters; `num_workers` sizes the worker set (0 → max worker id + 1).
[[nodiscard]] obs::analysis::TraceModel make_trace_model(
    const TaskGraph& graph, std::span<const TaskTrace> trace,
    int num_workers);

/// RunStats::kind_counters rendered as analysis rows (one per sampled
/// kind); empty when counters were not sampled or perf was unavailable.
[[nodiscard]] std::vector<obs::analysis::ClassHwRow> hw_class_rows(
    const RunStats& stats);

}  // namespace bpar::taskrt
