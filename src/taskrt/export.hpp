// Diagnostics exports for task graphs and executions:
//  * Graphviz DOT of a TaskGraph (colored by task kind, grouped by layer),
//    like the paper's Fig. 2 dependency diagrams;
//  * Chrome-tracing JSON ("chrome://tracing" / Perfetto) of a recorded
//    RunStats trace, one row per worker.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "taskrt/runtime.hpp"
#include "taskrt/task_graph.hpp"

namespace bpar::taskrt {

struct DotOptions {
  /// Cap on emitted tasks (large graphs become unreadable); 0 = no cap.
  std::size_t max_tasks = 2000;
  bool include_names = true;
};

/// Writes the graph in Graphviz DOT format.
void write_dot(const TaskGraph& graph, std::ostream& os,
               const DotOptions& options = {});
void write_dot_file(const TaskGraph& graph, const std::string& path,
                    const DotOptions& options = {});

/// Writes a Chrome-tracing JSON document from per-task (start, end,
/// worker) tuples — one per task in `graph` (works for real executions and
/// for simulated schedules alike).
void write_chrome_trace(const TaskGraph& graph,
                        std::span<const TaskTrace> trace, std::ostream& os);

/// Convenience overload for a run recorded with
/// RuntimeOptions::record_trace.
void write_chrome_trace(const TaskGraph& graph, const RunStats& stats,
                        std::ostream& os);
void write_chrome_trace_file(const TaskGraph& graph, const RunStats& stats,
                             const std::string& path);

/// One merged chrome-trace document: fully named task slices from a
/// recorded RunStats trace (one row per worker) plus every obs span,
/// counter, and instant collected so far (one row per recording thread) on
/// a single shared timeline. Requires record_trace; spans require tracing
/// to have been enabled during the run.
void write_unified_trace(const TaskGraph& graph, const RunStats& stats,
                         std::ostream& os);
void write_unified_trace_file(const TaskGraph& graph, const RunStats& stats,
                              const std::string& path);

}  // namespace bpar::taskrt
