#include "taskrt/runtime.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace bpar::taskrt {

using sync::mo_acq_rel;
using sync::mo_acquire;
using sync::mo_relaxed;
using sync::mo_release;
using sync::mo_seq_cst;

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return "fifo";
    case SchedulerPolicy::kLocalityAware:
      return "locality";
  }
  return "unknown";
}

double RunStats::parallel_efficiency() const {
  if (wall_ns == 0 || worker_busy_ns.empty()) return 0.0;
  return static_cast<double>(total_busy_ns()) /
         (static_cast<double>(wall_ns) *
          static_cast<double>(worker_busy_ns.size()));
}

std::uint64_t RunStats::total_busy_ns() const {
  std::uint64_t total = 0;
  for (const auto busy : worker_busy_ns) total += busy;
  return total;
}

Runtime::Runtime(RuntimeOptions options) : options_(std::move(options)) {
  if (!options_.faults.enabled() && options_.read_fault_env) {
    if (const char* env = std::getenv("BPAR_FAULTS");
        env != nullptr && env[0] != '\0') {
      options_.faults = FaultSpec::parse(env);
      BPAR_LOG_WARN << "fault injection enabled from BPAR_FAULTS: " << env;
    }
  }
  if (options_.faults.enabled()) {
    fault_injector_ = std::make_unique<FaultInjector>(options_.faults);
  }
  num_workers_ = options_.num_workers > 0
                     ? options_.num_workers
                     : static_cast<int>(std::thread::hardware_concurrency());
  if (num_workers_ <= 0) num_workers_ = 1;
  steal_min_keep_ =
      options_.policy == SchedulerPolicy::kLocalityAware ? 1 : 0;
  state_chunks_.reset(new std::atomic<TaskState*>[kMaxStateChunks]);
  for (std::size_t c = 0; c < kMaxStateChunks; ++c) {
    state_chunks_[c].store(nullptr, std::memory_order_relaxed);
  }
  workers_ = std::make_unique<Worker[]>(static_cast<std::size_t>(num_workers_));

  // Intern every trace label up front; the hot path only loads these ids.
  for (std::size_t k = 0; k < kNumTaskKinds; ++k) {
    obs_kind_ids_[k] = obs::intern_name(task_kind_name(static_cast<TaskKind>(k)));
  }
  obs_fifo_depth_id_ = obs::intern_name("ready_fifo_depth");
  obs_steal_id_ = obs::intern_name("steal");
  obs_park_id_ = obs::intern_name("park");
  obs_fault_id_ = obs::intern_name("fault");
  obs_taskwait_id_ = obs::intern_name("taskwait");
  obs_deque_depth_ids_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    obs_deque_depth_ids_.push_back(
        obs::intern_name("deque_depth_w" + std::to_string(w)));
  }

#if defined(__linux__)
  // Pin onto the CPUs this process is actually allowed to run on (the
  // container/cgroup cpuset), not onto raw 0..hardware_concurrency-1 —
  // those ids can lie outside the allowed mask and the pin would either
  // fail or strand a worker.
  std::vector<int> allowed_cpus;
  if (options_.pin_threads) {
    cpu_set_t process_mask;
    CPU_ZERO(&process_mask);
    if (sched_getaffinity(0, sizeof process_mask, &process_mask) == 0) {
      for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
        if (CPU_ISSET(cpu, &process_mask)) allowed_cpus.push_back(cpu);
      }
    }
  }
#endif

  threads_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
#if defined(__linux__)
    if (!allowed_cpus.empty()) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<std::size_t>(
                  allowed_cpus[static_cast<std::size_t>(w) %
                               allowed_cpus.size()]),
              &set);
      // Best effort: pinning may still be forbidden.
      pthread_setaffinity_np(threads_.back().native_handle(), sizeof set,
                             &set);
    }
#endif
  }
}

Runtime::~Runtime() {
  // Workers blocked in an injected stall must be woken or join() hangs.
  if (fault_injector_) fault_injector_->release_stalls();
  shutdown_.store(true, mo_seq_cst);
  {
    const std::lock_guard<std::mutex> guard(park_mu_);
    park_epoch_.fetch_add(1, mo_release);
  }
  park_cv_.notify_all();
  for (auto& t : threads_) t.join();
  for (std::size_t c = 0; c < kMaxStateChunks; ++c) {
    delete[] state_chunks_[c].load(std::memory_order_relaxed);
  }
}

std::uint64_t Runtime::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - session_start_)
          .count());
}

Runtime::TaskState& Runtime::init_state(TaskId id) {
  const std::size_t chunk = id >> kStateChunkBits;
  BPAR_CHECK(chunk < kMaxStateChunks, "session exceeds ",
             kMaxStateChunks * kStateChunkSize, " tasks");
  TaskState* base = state_chunks_[chunk].load(mo_relaxed);
  if (base == nullptr) {
    base = new TaskState[kStateChunkSize];
    state_chunks_[chunk].store(base, mo_release);
  }
  TaskState& st = base[id & (kStateChunkSize - 1)];
  const Task& task = graph_->task(id);
  st.pending.store(0, mo_relaxed);
  st.preferred.store(-1, mo_relaxed);
  st.completed = false;
  st.task = &task;
  st.affinity = task.affinity_pred;
  st.duration_ns = 0;
  st.trace = {};
  return st;
}

void Runtime::begin(TaskGraph& graph) {
  const std::lock_guard<std::mutex> lock(mu_);
  BPAR_CHECK(!session_active_, "Runtime session already active");
  BPAR_CHECK(!poisoned_,
             "Runtime poisoned by an unrecovered watchdog failure");
  if (fault_injector_) {
    fault_injector_->begin_session();
    fault_injector_->rearm_stalls();
  }
  graph_ = &graph;
  // Quiescent point: the previous session drained every queue, so the
  // FIFO's consumed segments can be freed without a reclamation protocol.
  ready_fifo_.reclaim_consumed();
  executed_.store(0, mo_relaxed);
  submitted_.store(graph.size(), mo_relaxed);
  active_.store(0, mo_relaxed);
  max_active_.store(0, mo_relaxed);
  locality_hits_.store(0, mo_relaxed);
  steals_.store(0, mo_relaxed);
  steal_failures_.store(0, mo_relaxed);
  parks_.store(0, mo_relaxed);
  fifo_pushes_.store(0, mo_relaxed);
  deque_pushes_.store(0, mo_relaxed);
  tasks_with_affinity_ = 0;
  for (int w = 0; w < num_workers_; ++w) {
    workers_[w].busy_ns = 0;
    if (options_.sample_counters) {
      workers_[w].kind_counters.assign(kNumTaskKinds, {});
    }
  }
  first_error_ = nullptr;
  session_start_ = std::chrono::steady_clock::now();
  session_start_steady_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          session_start_.time_since_epoch())
          .count());
  session_active_ = true;

  // Tasks already present in the graph are published in two phases: every
  // task needs its state in place before any root can run and decrement a
  // successor's dependency counter.
  for (TaskId id = 0; id < graph.size(); ++id) {
    TaskState& st = init_state(id);
    st.pending.store(st.task->num_deps, mo_relaxed);
    if (st.affinity != kInvalidTask) ++tasks_with_affinity_;
  }
  // Readiness must come from the graph's static num_deps: once the first
  // root is enqueued, workers run and decrement live counters concurrently
  // with this scan, and a task whose last predecessor finishes mid-scan
  // would otherwise be enqueued twice (once by the worker, once here).
  for (TaskId id = 0; id < graph.size(); ++id) {
    if (graph.task(id).num_deps == 0) enqueue_ready(id, -1);
  }
}

TaskId Runtime::submit(std::function<void()> fn,
                       std::span<const Access> accesses, TaskSpec spec) {
  std::unique_lock<std::mutex> lock(mu_);
  BPAR_CHECK(session_active_, "submit() outside a session");
  const TaskId id = graph_->add_unlinked(std::move(fn), accesses,
                                         std::move(spec), &scratch_preds_);
  publish(id, scratch_preds_);
  lock.unlock();
  release_publish_bias(id);
  return id;
}

Runtime::TaskState& Runtime::publish(TaskId id,
                                     const std::vector<TaskId>& preds) {
  TaskState& st = init_state(id);
  // Bias the dependency counter by one so it cannot reach zero (and the
  // task cannot be enqueued) until release_publish_bias(); predecessors
  // may complete and decrement concurrently while we are still linking.
  st.pending.store(1, mo_relaxed);
  if (st.affinity != kInvalidTask) ++tasks_with_affinity_;
  for (const TaskId pred : preds) {
    // Count the dependency before the edge becomes visible, so a
    // predecessor finishing right now cannot decrement below the bias.
    st.pending.fetch_add(1, mo_relaxed);
    TaskState& ps = state(pred);
    bool will_notify;
    {
      const sync::SpinGuard guard(ps.succ_lock);
      graph_->link(pred, id);
      will_notify = !ps.completed;
    }
    if (!will_notify) st.pending.fetch_sub(1, mo_relaxed);
  }
  submitted_.store(submitted_.load(mo_relaxed) + 1, mo_release);
  return st;
}

void Runtime::release_publish_bias(TaskId id) {
  if (state(id).pending.fetch_sub(1, mo_acq_rel) == 1) {
    enqueue_ready(id, -1);
  }
}

void Runtime::taskwait() {
  const std::uint64_t wait_start =
      obs::tracing_enabled() ? obs::now_ns() : 0;
  std::unique_lock<std::mutex> lock(mu_);
  BPAR_CHECK(session_active_, "taskwait() outside a session");
  wait_drained(lock);
  if (wait_start != 0) {
    obs::record_span(obs_taskwait_id_, wait_start, obs::now_ns());
  }
}

void Runtime::wait_drained(std::unique_lock<std::mutex>& lock) {
  const auto drained = [this] {
    return executed_.load(std::memory_order_acquire) ==
           submitted_.load(mo_relaxed);
  };
  if (options_.watchdog_ms == 0) {
    done_cv_.wait(lock, drained);
    return;
  }
  const auto deadline = std::chrono::milliseconds(options_.watchdog_ms);
  // Poll at a fraction of the deadline: fine enough to notice progress,
  // coarse enough to stay off the workers' hot path entirely.
  const auto poll = std::max<std::chrono::milliseconds>(
      std::chrono::milliseconds(1), deadline / 8);
  auto last_progress = std::chrono::steady_clock::now();
  std::size_t last_executed = executed_.load(std::memory_order_acquire);
  while (!drained()) {
    done_cv_.wait_for(lock, poll);
    const std::size_t now_executed =
        executed_.load(std::memory_order_acquire);
    if (now_executed != last_executed) {
      last_executed = now_executed;
      last_progress = std::chrono::steady_clock::now();
      continue;
    }
    if (drained()) break;
    if (std::chrono::steady_clock::now() - last_progress < deadline) {
      continue;
    }
    // Watchdog fires: capture the scheduler state *before* perturbing it.
    std::ostringstream head;
    head << "watchdog: no task completed for " << options_.watchdog_ms
         << " ms with the graph undrained";
    std::string diag = dump_locked(head.str());
    if (fault_injector_) fault_injector_->release_stalls();
    // Grace period: if the stall was injected, releasing it drains the
    // graph and the runtime stays usable; a genuine hang poisons it.
    const bool recovered = done_cv_.wait_for(lock, deadline, drained);
    if (!recovered) poisoned_ = true;
    session_active_ = false;
    graph_ = nullptr;
    first_error_ = nullptr;
    diag += recovered
                ? "\nrecovery: graph drained after stalls were released; "
                  "session closed, runtime reusable"
                : "\nrecovery: graph still stuck after stall release; "
                  "runtime poisoned (workers may be wedged)";
    BPAR_LOG_ERROR << diag;
    throw WatchdogError(diag);
  }
}

std::string Runtime::dump_locked(const std::string& headline) {
  std::ostringstream os;
  os << headline << "\n";
  const std::size_t submitted = submitted_.load(mo_relaxed);
  const std::size_t executed = executed_.load(std::memory_order_acquire);
  os << "  tasks: submitted=" << submitted << " executed=" << executed
     << " outstanding=" << submitted - executed
     << " active=" << active_.load(mo_relaxed)
     << " sleepers=" << sleepers_.load(mo_relaxed) << "\n";
  os << "  ready-fifo: head=" << ready_fifo_.head_approx()
     << " tail=" << ready_fifo_.tail_approx()
     << " depth=" << ready_fifo_.size_approx() << "\n";
  os << "  worker deque depths:";
  for (int w = 0; w < num_workers_; ++w) {
    os << " w" << w << "=" << workers_[w].deque.size_approx();
  }
  os << "\n";
  // Pending-counter histogram over unfinished tasks, plus the oldest one.
  std::size_t histogram[4] = {0, 0, 0, 0};  // pending 0 / 1 / 2 / >=3
  TaskId oldest = kInvalidTask;
  for (TaskId id = 0; id < submitted; ++id) {
    TaskState& st = state(id);
    bool completed;
    {
      const sync::SpinGuard guard(st.succ_lock);
      completed = st.completed;
    }
    if (completed) continue;
    const std::uint32_t pending = st.pending.load(mo_relaxed);
    ++histogram[pending < 3 ? pending : 3];
    if (oldest == kInvalidTask) oldest = id;
  }
  os << "  pending histogram (unfinished): 0=" << histogram[0]
     << " 1=" << histogram[1] << " 2=" << histogram[2]
     << " >=3=" << histogram[3] << "\n";
  if (oldest != kInvalidTask && graph_ != nullptr) {
    const Task& task = graph_->task(oldest);
    os << "  oldest unfinished: task " << oldest << " kind="
       << task_kind_name(task.spec.kind);
    if (!task.spec.name.empty()) os << " name='" << task.spec.name << "'";
    os << " pending=" << state(oldest).pending.load(mo_relaxed);
    if (task.spec.layer >= 0) os << " layer=" << task.spec.layer;
    if (task.spec.step >= 0) os << " step=" << task.spec.step;
    os << "\n";
  }
  if (fault_injector_) {
    os << "  fault injector: throws=" << fault_injector_->throws_injected()
       << " delays=" << fault_injector_->delays_injected()
       << " stalls=" << fault_injector_->stalls_injected()
       << " active-stalls=" << fault_injector_->active_stalls() << "\n";
  }
  os << "  session counters: steals=" << steals_.load(mo_relaxed)
     << " steal-failures=" << steal_failures_.load(mo_relaxed)
     << " parks=" << parks_.load(mo_relaxed)
     << " fifo-pushes=" << fifo_pushes_.load(mo_relaxed)
     << " deque-pushes=" << deque_pushes_.load(mo_relaxed) << "\n";
  if (const std::string metrics =
          obs::Registry::instance().format_compact("taskrt.");
      !metrics.empty()) {
    os << "  lifetime metrics: " << metrics << "\n";
  }
  return os.str();
}

std::string Runtime::scheduler_state_dump() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!session_active_) return "scheduler idle (no active session)";
  return dump_locked("scheduler state");
}

RunStats Runtime::end() {
  const std::uint64_t wait_start =
      obs::tracing_enabled() ? obs::now_ns() : 0;
  std::unique_lock<std::mutex> lock(mu_);
  BPAR_CHECK(session_active_, "end() outside a session");
  wait_drained(lock);
  if (wait_start != 0) {
    obs::record_span(obs_taskwait_id_, wait_start, obs::now_ns());
  }
  RunStats stats;
  stats.wall_ns = now_ns();
  const std::size_t total = submitted_.load(mo_relaxed);
  stats.tasks_executed = total;
  stats.max_concurrency = max_active_.load(mo_relaxed);
  stats.tasks_with_affinity = tasks_with_affinity_;
  stats.locality_hits = locality_hits_.load(mo_relaxed);
  stats.steals = steals_.load(mo_relaxed);
  stats.steal_failures = steal_failures_.load(mo_relaxed);
  stats.parks = parks_.load(mo_relaxed);
  stats.fifo_pushes = fifo_pushes_.load(mo_relaxed);
  stats.deque_pushes = deque_pushes_.load(mo_relaxed);
  stats.session_start_ns = session_start_steady_ns_;
  stats.task_duration_ns.resize(total);
  if (options_.record_trace) stats.trace.resize(total);
  for (TaskId id = 0; id < total; ++id) {
    const TaskState& st = state(id);
    stats.task_duration_ns[id] = st.duration_ns;
    if (options_.record_trace) stats.trace[id] = st.trace;
  }
  stats.worker_busy_ns.resize(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    stats.worker_busy_ns[static_cast<std::size_t>(w)] = workers_[w].busy_ns;
  }
  if (options_.sample_counters && pmu_workers_.load(mo_acquire) > 0) {
    stats.kind_counters.assign(kNumTaskKinds, {});
    for (int w = 0; w < num_workers_; ++w) {
      const Worker& worker = workers_[w];
      for (std::size_t k = 0; k < worker.kind_counters.size(); ++k) {
        RunStats::KindCounters& agg = stats.kind_counters[k];
        agg.tasks += worker.kind_counters[k].tasks;
        agg.busy_ns += worker.kind_counters[k].busy_ns;
        agg.counters += worker.kind_counters[k].counters;
      }
    }
  }
  session_active_ = false;
  graph_ = nullptr;
  const std::exception_ptr error = first_error_;
  lock.unlock();

  // Publish scheduler counters into the process-wide metrics registry (the
  // watchdog dump, run reports, and test diagnostics all read from there).
  // Cold path: one map lookup per counter, once per session.
  auto& reg = obs::Registry::instance();
  reg.counter("taskrt.sessions").add(1);
  reg.counter("taskrt.tasks_executed").add(total);
  reg.counter("taskrt.steals").add(stats.steals);
  reg.counter("taskrt.steal_failures").add(stats.steal_failures);
  reg.counter("taskrt.parks").add(stats.parks);
  reg.counter("taskrt.fifo_pushes").add(stats.fifo_pushes);
  reg.counter("taskrt.deque_pushes").add(stats.deque_pushes);
  reg.counter("taskrt.locality_hits").add(stats.locality_hits);
  const std::uint64_t busy = stats.total_busy_ns();
  const std::uint64_t capacity =
      stats.wall_ns * static_cast<std::uint64_t>(num_workers_);
  reg.counter("taskrt.busy_ns").add(busy);
  reg.counter("taskrt.idle_ns").add(capacity > busy ? capacity - busy : 0);
  reg.gauge("taskrt.parallel_efficiency").set(stats.parallel_efficiency());
  reg.gauge("taskrt.max_concurrency").set(stats.max_concurrency);
  for (std::size_t k = 0; k < stats.kind_counters.size(); ++k) {
    const RunStats::KindCounters& kc = stats.kind_counters[k];
    if (kc.tasks == 0) continue;
    const std::string prefix =
        std::string("taskrt.hw.") + task_kind_name(static_cast<TaskKind>(k));
    reg.gauge(prefix + ".ipc").set(kc.counters.ipc());
    reg.gauge(prefix + ".mpki").set(kc.counters.mpki());
    reg.gauge(prefix + ".mux_scale").set(kc.counters.scale);
  }

  if (error) std::rethrow_exception(error);
  return stats;
}

RunStats Runtime::run(TaskGraph& graph) {
  begin(graph);
  return end();
}

void Runtime::parallel_for(
    std::int64_t begin_index, std::int64_t end_index, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  BPAR_CHECK(grain > 0, "grain must be positive");
  if (begin_index >= end_index) return;
  TaskGraph graph;
  begin(graph);
  for (std::int64_t lo = begin_index; lo < end_index; lo += grain) {
    const std::int64_t hi = std::min(end_index, lo + grain);
    TaskSpec spec;
    spec.kind = TaskKind::kGemmChunk;
    submit([fn, lo, hi] { fn(lo, hi); }, std::move(spec));
  }
  end();
}

void Runtime::worker_loop(int worker_id) {
  obs::set_thread_name("worker " + std::to_string(worker_id));
  if (options_.sample_counters) {
    // Thread-scope events must be opened by the thread they count.
    auto pmu = std::make_unique<perf::PerfCounters>(perf::CounterScope::kThread);
    if (pmu->available()) {
      pmu->start();  // enable once; per-task slicing uses read() deltas
      workers_[worker_id].pmu = std::move(pmu);
      pmu_workers_.fetch_add(1, mo_release);
    }
  }
  for (;;) {
    const TaskId id = next_task(worker_id);
    if (id == kInvalidTask) return;  // shutdown
    execute_task(id, worker_id);
  }
}

void Runtime::execute_task(TaskId id, int worker_id) {
  TaskState& st = state(id);
  Worker& self = workers_[worker_id];
  if (options_.policy == SchedulerPolicy::kLocalityAware &&
      st.preferred.load(mo_relaxed) == worker_id) {
    locality_hits_.fetch_add(1, mo_relaxed);
  }
  const std::int32_t concurrent = active_.fetch_add(1, mo_relaxed) + 1;
  std::int32_t seen_max = max_active_.load(mo_relaxed);
  while (seen_max < concurrent &&
         !max_active_.compare_exchange_weak(seen_max, concurrent,
                                            mo_relaxed)) {
  }
  // Fault injection runs BEFORE the start sample (disabled injection costs
  // exactly this null test): injected delays/stalls become gaps on the
  // worker's timeline — attributed to the recorded "fault" span by the
  // analysis engine — instead of inflating the task's own duration.
  bool fault_thrown = false;
  if (fault_injector_) [[unlikely]] {
    const std::uint64_t fault_start = now_ns();
    try {
      fault_injector_->before_execute(id);
    } catch (...) {
      const std::lock_guard<std::mutex> guard(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      fault_thrown = true;  // skip the body; bookkeeping still completes
    }
    if (const std::uint64_t fault_end = now_ns();
        obs::tracing_enabled() && fault_end - fault_start > 1000) {
      obs::record_span(obs_fault_id_, session_start_steady_ns_ + fault_start,
                       session_start_steady_ns_ + fault_end);
    }
  }
  perf::CounterReading pmu_begin;
  if (self.pmu) pmu_begin = self.pmu->read();
  // While a span-stack profiler samples, the task body runs under the
  // task-kind name so worker samples fold as "task.<kind>;kernels.<op>"
  // instead of orphaned kernel leaves.
  const bool prof = obs::profiling_active();
  if (prof) {
    obs::span_stack_push(
        obs_kind_ids_[static_cast<std::size_t>(st.task->spec.kind)]);
  }
  const std::uint64_t start = now_ns();
  try {
    if (!fault_thrown) st.task->fn();
  } catch (...) {
    const std::lock_guard<std::mutex> guard(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  if (prof) obs::span_stack_pop();
  // Sample the finish time before any scheduler bookkeeping: durations and
  // busy time cover the task body only, so parallel_efficiency() does not
  // absorb scheduler overhead or (formerly) mutex wait.
  const std::uint64_t finish = now_ns();
  active_.fetch_sub(1, mo_relaxed);
  st.duration_ns = finish - start;
  self.busy_ns += finish - start;
  if (options_.record_trace) st.trace = {start, finish, worker_id};
  if (pmu_begin.valid) {
    RunStats::KindCounters& kc =
        self.kind_counters[static_cast<std::size_t>(st.task->spec.kind)];
    ++kc.tasks;
    kc.busy_ns += finish - start;
    kc.counters += perf::counter_delta(pmu_begin, self.pmu->read());
  }
  if (obs::tracing_enabled()) {
    // Reuse the start/finish samples already taken: the task row costs no
    // extra clock reads. Queue depths are sampled every 32nd task per
    // worker (first task included, so short runs still get the tracks):
    // size_approx() reads shared producer/consumer cursors, and doing
    // that per task measurably perturbs the dispatch path it observes.
    const auto kind = static_cast<std::uint8_t>(st.task->spec.kind);
    const std::uint64_t abs_start = session_start_steady_ns_ + start;
    const std::uint64_t abs_finish = session_start_steady_ns_ + finish;
    obs::record_task(obs_kind_ids_[kind], kind, abs_start, abs_finish);
    if ((self.trace_tick++ & 31U) == 0U) {
      obs::record_counter(obs_fifo_depth_id_, abs_finish,
                          ready_fifo_.size_approx());
      obs::record_counter(
          obs_deque_depth_ids_[static_cast<std::size_t>(worker_id)],
          abs_finish, self.deque.size_approx());
    }
  }

  // Completion snapshot: after `completed` flips under the lock, submit()
  // counts any new edge to this task as already satisfied, so exactly the
  // successors captured here are the ones we must notify.
  self.succ_scratch.clear();
  {
    const sync::SpinGuard guard(st.succ_lock);
    st.completed = true;
    const auto& succs = st.task->successors;
    self.succ_scratch.assign(succs.begin(), succs.end());
  }
  for (const TaskId succ : self.succ_scratch) {
    TaskState& succ_state = state(succ);
    if (options_.policy == SchedulerPolicy::kLocalityAware &&
        succ_state.affinity == id) {
      succ_state.preferred.store(worker_id, mo_relaxed);
    }
    BPAR_DCHECK(succ_state.pending.load(mo_relaxed) > 0);
    if (succ_state.pending.fetch_sub(1, mo_acq_rel) == 1) {
      enqueue_ready(succ, worker_id);
    }
  }
  const std::size_t done =
      executed_.fetch_add(1, std::memory_order_release) + 1;
  if (done == submitted_.load(std::memory_order_acquire)) {
    // Lock/unlock pairs with the waiter's predicate check under mu_ so the
    // notify cannot slip between its check and its wait.
    { const std::lock_guard<std::mutex> guard(mu_); }
    done_cv_.notify_all();
  }
}

TaskId Runtime::next_task(int worker_id) {
  Worker& self = workers_[worker_id];
  int failures = 0;
  for (;;) {
    if (shutdown_.load(mo_acquire)) return kInvalidTask;
    if (!self.deque.empty_approx()) {
      if (const TaskId id = self.deque.pop(); id != kInvalidTask) return id;
    }
    if (const TaskId id = ready_fifo_.try_dequeue(); id != kInvalidTask) {
      return id;
    }
    for (int i = 1; i < num_workers_; ++i) {
      int victim = worker_id + i;
      if (victim >= num_workers_) victim -= num_workers_;
      const TaskId id = workers_[victim].deque.steal(steal_min_keep_);
      if (id != kInvalidTask) {
        steals_.fetch_add(1, mo_relaxed);
        if (obs::tracing_enabled()) {
          obs::record_instant(obs_steal_id_, obs::now_ns());
        }
        return id;
      }
    }
    steal_failures_.fetch_add(1, mo_relaxed);
    ++failures;
    if (failures <= 2) continue;  // immediate re-sweep
    if (failures <= 5) {
      std::this_thread::yield();
      continue;
    }
    failures = 0;
    // Park. The seq_cst sleeper registration pairs with the fence in
    // notify_workers(): a producer either observes us sleeping (and
    // notifies) or we observe its enqueue in the re-check below.
    const std::uint64_t ticket = park_epoch_.load(mo_acquire);
    sleepers_.fetch_add(1, mo_seq_cst);
    if (has_visible_work(worker_id) || shutdown_.load(mo_relaxed)) {
      sleepers_.fetch_sub(1, mo_relaxed);
      continue;
    }
    parks_.fetch_add(1, mo_relaxed);
    const std::uint64_t park_start =
        obs::tracing_enabled() ? obs::now_ns() : 0;
    {
      std::unique_lock<std::mutex> lock(park_mu_);
      park_cv_.wait(lock, [&] {
        return park_epoch_.load(mo_relaxed) != ticket ||
               shutdown_.load(mo_relaxed);
      });
    }
    if (park_start != 0) {
      obs::record_span(obs_park_id_, park_start, obs::now_ns());
    }
    sleepers_.fetch_sub(1, mo_relaxed);
  }
}

bool Runtime::has_visible_work(int worker_id) const {
  if (!ready_fifo_.empty_approx()) return true;
  for (int v = 0; v < num_workers_; ++v) {
    // A sibling's reserved last entry is not stealable work; our own deque
    // is checked without the reservation (we could pop it).
    const int keep = v == worker_id ? 0 : steal_min_keep_;
    if (workers_[v].deque.stealable(keep)) return true;
  }
  return false;
}

void Runtime::enqueue_ready(TaskId id, int from_worker) {
  if (options_.policy == SchedulerPolicy::kLocalityAware &&
      from_worker >= 0 &&
      state(id).preferred.load(mo_relaxed) == from_worker) {
    // Producer-consumer locality: the consumer joins the producing
    // worker's own deque (owner push), where LIFO pop runs it while its
    // input is still cache-hot.
    workers_[from_worker].deque.push(id);
    deque_pushes_.fetch_add(1, mo_relaxed);
  } else {
    ready_fifo_.enqueue(id);
    fifo_pushes_.fetch_add(1, mo_relaxed);
  }
  notify_workers();
}

void Runtime::notify_workers() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(mo_relaxed) == 0) return;
  {
    const std::lock_guard<std::mutex> guard(park_mu_);
    park_epoch_.fetch_add(1, mo_release);
  }
  park_cv_.notify_one();
}

}  // namespace bpar::taskrt
