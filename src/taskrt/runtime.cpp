#include "taskrt/runtime.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/logging.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace bpar::taskrt {

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return "fifo";
    case SchedulerPolicy::kLocalityAware:
      return "locality";
  }
  return "unknown";
}

double RunStats::parallel_efficiency() const {
  if (wall_ns == 0 || worker_busy_ns.empty()) return 0.0;
  return static_cast<double>(total_busy_ns()) /
         (static_cast<double>(wall_ns) *
          static_cast<double>(worker_busy_ns.size()));
}

std::uint64_t RunStats::total_busy_ns() const {
  std::uint64_t total = 0;
  for (const auto busy : worker_busy_ns) total += busy;
  return total;
}

Runtime::Runtime(RuntimeOptions options) : options_(options) {
  num_workers_ = options_.num_workers > 0
                     ? options_.num_workers
                     : static_cast<int>(std::thread::hardware_concurrency());
  if (num_workers_ <= 0) num_workers_ = 1;
  local_queues_.resize(static_cast<std::size_t>(num_workers_));
  worker_busy_ns_.resize(static_cast<std::size_t>(num_workers_));
  workers_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
#if defined(__linux__)
    if (options_.pin_threads) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<std::size_t>(w) %
                  std::max(1U, std::thread::hardware_concurrency()),
              &set);
      // Best effort: pinning may be forbidden in containers.
      pthread_setaffinity_np(workers_.back().native_handle(), sizeof set,
                             &set);
    }
#endif
  }
}

Runtime::~Runtime() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::uint64_t Runtime::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - session_start_)
          .count());
}

void Runtime::begin(TaskGraph& graph) {
  std::unique_lock<std::mutex> lock(mu_);
  BPAR_CHECK(!session_active_, "Runtime session already active");
  graph_ = &graph;
  pending_.clear();
  completed_.clear();
  preferred_.clear();
  durations_.clear();
  traces_.clear();
  global_queue_.clear();
  for (auto& q : local_queues_) q.clear();
  executed_ = 0;
  submitted_ = 0;
  active_ = 0;
  max_active_ = 0;
  locality_hits_ = 0;
  tasks_with_affinity_ = 0;
  std::fill(worker_busy_ns_.begin(), worker_busy_ns_.end(), 0);
  first_error_ = nullptr;
  session_start_ = std::chrono::steady_clock::now();
  session_active_ = true;

  // Tasks already present in the graph are published immediately. Their
  // dependency counts come straight from the graph (nothing has run yet).
  for (TaskId id = 0; id < graph.size(); ++id) {
    const Task& t = graph.task(id);
    pending_.push_back(t.num_deps);
    completed_.push_back(false);
    preferred_.push_back(-1);
    durations_.push_back(0);
    if (options_.record_trace) traces_.push_back({});
    if (t.affinity_pred != kInvalidTask) ++tasks_with_affinity_;
    ++submitted_;
    if (t.num_deps == 0) enqueue_ready(id);
  }
  lock.unlock();
  work_cv_.notify_all();
}

TaskId Runtime::submit(std::function<void()> fn,
                       std::span<const Access> accesses, TaskSpec spec) {
  std::unique_lock<std::mutex> lock(mu_);
  BPAR_CHECK(session_active_, "submit() outside a session");
  const TaskId id =
      graph_->add(std::move(fn), accesses, std::move(spec), &scratch_preds_);
  publish(id, scratch_preds_);
  lock.unlock();
  work_cv_.notify_all();
  return id;
}

void Runtime::publish(TaskId id, const std::vector<TaskId>& preds) {
  // Count only predecessors that have not yet completed; completed ones
  // will never decrement us.
  std::uint32_t unmet = 0;
  for (const TaskId pred : preds) {
    if (!completed_[pred]) ++unmet;
  }
  pending_.push_back(unmet);
  completed_.push_back(false);
  preferred_.push_back(-1);
  durations_.push_back(0);
  if (options_.record_trace) traces_.push_back({});
  if (graph_->task(id).affinity_pred != kInvalidTask) {
    ++tasks_with_affinity_;
  }
  ++submitted_;
  if (unmet == 0) enqueue_ready(id);
}

void Runtime::taskwait() {
  std::unique_lock<std::mutex> lock(mu_);
  BPAR_CHECK(session_active_, "taskwait() outside a session");
  done_cv_.wait(lock, [this] { return executed_ == submitted_; });
}

RunStats Runtime::end() {
  std::unique_lock<std::mutex> lock(mu_);
  BPAR_CHECK(session_active_, "end() outside a session");
  done_cv_.wait(lock, [this] { return executed_ == submitted_; });
  RunStats stats;
  stats.wall_ns = now_ns();
  stats.tasks_executed = executed_;
  stats.max_concurrency = max_active_;
  stats.tasks_with_affinity = tasks_with_affinity_;
  stats.locality_hits = locality_hits_;
  stats.task_duration_ns.assign(durations_.begin(), durations_.end());
  stats.worker_busy_ns = worker_busy_ns_;
  if (options_.record_trace) {
    stats.trace.assign(traces_.begin(), traces_.end());
  }
  session_active_ = false;
  graph_ = nullptr;
  const std::exception_ptr error = first_error_;
  lock.unlock();
  if (error) std::rethrow_exception(error);
  return stats;
}

RunStats Runtime::run(TaskGraph& graph) {
  begin(graph);
  return end();
}

void Runtime::parallel_for(
    std::int64_t begin_index, std::int64_t end_index, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  BPAR_CHECK(grain > 0, "grain must be positive");
  if (begin_index >= end_index) return;
  TaskGraph graph;
  begin(graph);
  for (std::int64_t lo = begin_index; lo < end_index; lo += grain) {
    const std::int64_t hi = std::min(end_index, lo + grain);
    TaskSpec spec;
    spec.kind = TaskKind::kGemmChunk;
    // Chunks are independent: give each a distinct output address.
    submit([fn, lo, hi] { fn(lo, hi); },
           {out(reinterpret_cast<const void*>(lo + 1))}, std::move(spec));
  }
  end();
}

void Runtime::worker_loop(int worker_id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const TaskId id = next_task(worker_id, lock);
    if (shutdown_) return;
    if (id == kInvalidTask) continue;
    ++active_;
    max_active_ = std::max(max_active_, active_);
    if (options_.policy == SchedulerPolicy::kLocalityAware &&
        preferred_[id] == worker_id) {
      ++locality_hits_;
    }
    // The Task element is stable (deque storage); the function can be
    // invoked outside the lock.
    const Task* task = &graph_->task(id);
    const std::uint64_t start = now_ns();
    lock.unlock();
    try {
      task->fn();
    } catch (...) {
      const std::lock_guard<std::mutex> guard(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    lock.lock();
    const std::uint64_t finish = now_ns();
    durations_[id] = finish - start;
    worker_busy_ns_[static_cast<std::size_t>(worker_id)] += finish - start;
    if (options_.record_trace) {
      traces_[id] = {start, finish, worker_id};
    }
    --active_;
    completed_[id] = true;
    ++executed_;
    for (const TaskId succ : task->successors) {
      if (options_.policy == SchedulerPolicy::kLocalityAware &&
          graph_->task(succ).affinity_pred == id) {
        preferred_[succ] = worker_id;
      }
      BPAR_DCHECK(pending_[succ] > 0);
      if (--pending_[succ] == 0) enqueue_ready(succ);
    }
    if (executed_ == submitted_) done_cv_.notify_all();
  }
}

TaskId Runtime::next_task(int worker_id, std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (shutdown_) return kInvalidTask;
    if (session_active_) {
      auto& local = local_queues_[static_cast<std::size_t>(worker_id)];
      if (!local.empty()) {
        const TaskId id = local.front();
        local.pop_front();
        return id;
      }
      if (!global_queue_.empty()) {
        const TaskId id = global_queue_.front();
        global_queue_.pop_front();
        return id;
      }
      // Steal from the longest sibling queue, but leave a lone entry for
      // its owner: locality-aware scheduling keeps a ready consumer on the
      // core holding its producer's data even if that core is still busy.
      std::size_t victim = local_queues_.size();
      std::size_t best_len = 1;
      for (std::size_t w = 0; w < local_queues_.size(); ++w) {
        if (static_cast<int>(w) == worker_id) continue;
        if (local_queues_[w].size() > best_len) {
          best_len = local_queues_[w].size();
          victim = w;
        }
      }
      if (victim != local_queues_.size()) {
        const TaskId id = local_queues_[victim].front();
        local_queues_[victim].pop_front();
        return id;
      }
    }
    work_cv_.wait(lock);
  }
}

void Runtime::enqueue_ready(TaskId id) {
  if (options_.policy == SchedulerPolicy::kLocalityAware) {
    const std::int32_t pref = preferred_[id];
    if (pref >= 0) {
      local_queues_[static_cast<std::size_t>(pref)].push_back(id);
      work_cv_.notify_all();
      return;
    }
  }
  global_queue_.push_back(id);
  work_cv_.notify_all();
}

}  // namespace bpar::taskrt
