#include "taskrt/export.hpp"

#include <fstream>
#include <ostream>

#include "util/check.hpp"

namespace bpar::taskrt {
namespace {

const char* kind_color(TaskKind kind) {
  switch (kind) {
    case TaskKind::kCellForward:
      return "#7aa6c2";
    case TaskKind::kCellBackward:
      return "#c27a7a";
    case TaskKind::kMerge:
      return "#8fc27a";
    case TaskKind::kMergeBackward:
      return "#c2a57a";
    case TaskKind::kLoss:
      return "#b07ac2";
    case TaskKind::kGradReduce:
      return "#c2c07a";
    case TaskKind::kWeightUpdate:
      return "#7ac2b9";
    case TaskKind::kGemmChunk:
      return "#9a9a9a";
    case TaskKind::kBarrier:
      return "#4d4d4d";
    case TaskKind::kGeneric:
      return "#cccccc";
  }
  return "#cccccc";
}

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_dot(const TaskGraph& graph, std::ostream& os,
               const DotOptions& options) {
  const std::size_t limit =
      options.max_tasks == 0 ? graph.size()
                             : std::min(options.max_tasks, graph.size());
  os << "digraph bpar {\n  rankdir=TB;\n  node [style=filled, "
        "shape=box, fontsize=10];\n";
  for (TaskId id = 0; id < limit; ++id) {
    const Task& t = graph.task(id);
    os << "  t" << id << " [fillcolor=\"" << kind_color(t.spec.kind)
       << "\", label=\"";
    if (options.include_names && !t.spec.name.empty()) {
      os << escape(t.spec.name);
    } else {
      os << task_kind_name(t.spec.kind) << ' ' << id;
    }
    os << "\"];\n";
  }
  for (TaskId id = 0; id < limit; ++id) {
    for (const TaskId succ : graph.task(id).successors) {
      if (succ < limit) os << "  t" << id << " -> t" << succ << ";\n";
    }
  }
  if (limit < graph.size()) {
    os << "  truncated [shape=plaintext, label=\"... "
       << graph.size() - limit << " more tasks\"];\n";
  }
  os << "}\n";
}

void write_dot_file(const TaskGraph& graph, const std::string& path,
                    const DotOptions& options) {
  std::ofstream os(path);
  BPAR_CHECK(os.good(), "cannot open ", path);
  write_dot(graph, os, options);
}

void write_chrome_trace(const TaskGraph& graph,
                        std::span<const TaskTrace> trace, std::ostream& os) {
  BPAR_CHECK(trace.size() == graph.size(),
             "stats have no trace — run with record_trace = true");
  os << "[";
  bool first = true;
  for (TaskId id = 0; id < graph.size(); ++id) {
    const TaskTrace& tr = trace[id];
    const Task& t = graph.task(id);
    if (!first) os << ",";
    first = false;
    const std::string name =
        t.spec.name.empty() ? task_kind_name(t.spec.kind) : t.spec.name;
    os << "\n  {\"name\": \"" << escape(name) << "\", \"cat\": \""
       << task_kind_name(t.spec.kind) << "\", \"ph\": \"X\", \"ts\": "
       << static_cast<double>(tr.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(tr.end_ns - tr.start_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << tr.worker << "}";
  }
  os << "\n]\n";
}

void write_chrome_trace(const TaskGraph& graph, const RunStats& stats,
                        std::ostream& os) {
  write_chrome_trace(graph, std::span<const TaskTrace>(stats.trace), os);
}

void write_chrome_trace_file(const TaskGraph& graph, const RunStats& stats,
                             const std::string& path) {
  std::ofstream os(path);
  BPAR_CHECK(os.good(), "cannot open ", path);
  write_chrome_trace(graph, stats, os);
}

}  // namespace bpar::taskrt
