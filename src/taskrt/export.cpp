#include "taskrt/export.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "util/check.hpp"

namespace bpar::taskrt {
namespace {

const char* kind_color(TaskKind kind) {
  switch (kind) {
    case TaskKind::kCellForward:
      return "#7aa6c2";
    case TaskKind::kCellBackward:
      return "#c27a7a";
    case TaskKind::kMerge:
      return "#8fc27a";
    case TaskKind::kMergeBackward:
      return "#c2a57a";
    case TaskKind::kLoss:
      return "#b07ac2";
    case TaskKind::kGradReduce:
      return "#c2c07a";
    case TaskKind::kWeightUpdate:
      return "#7ac2b9";
    case TaskKind::kGemmChunk:
      return "#9a9a9a";
    case TaskKind::kBarrier:
      return "#4d4d4d";
    case TaskKind::kCellForwardFused:
      return "#5c8aa8";
    case TaskKind::kInputPrecompute:
      return "#7a8fc2";
    case TaskKind::kCoarsened:
      return "#a8a85c";
    case TaskKind::kGeneric:
      return "#cccccc";
  }
  return "#cccccc";
}

// Graphviz label escape: quotes and backslashes get a backslash; literal
// newlines become the DOT "\n" line-break sequence (a raw newline inside a
// quoted label malforms the file). Other control characters are dropped.
std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
  }
  return out;
}

// Renders the {task, deps, worker, layer, step} args object that makes a
// task slice analysis-consumable (obs::analysis::model_from_trace_json).
std::string task_args_json(TaskId id, const std::vector<TaskId>& preds,
                           std::int32_t worker, const TaskSpec& spec) {
  std::string args = "{\"task\": " + std::to_string(id) + ", \"deps\": [";
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) args += ", ";
    args += std::to_string(preds[i]);
  }
  args += "], \"worker\": " + std::to_string(worker);
  if (spec.layer >= 0) args += ", \"layer\": " + std::to_string(spec.layer);
  if (spec.step >= 0) args += ", \"step\": " + std::to_string(spec.step);
  args += "}";
  return args;
}

}  // namespace

std::vector<std::vector<TaskId>> predecessor_lists(const TaskGraph& graph) {
  std::vector<std::vector<TaskId>> preds(graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    for (const TaskId succ : graph.task(id).successors) {
      preds[succ].push_back(id);
    }
  }
  return preds;
}

void write_dot(const TaskGraph& graph, std::ostream& os,
               const DotOptions& options) {
  const std::size_t limit =
      options.max_tasks == 0 ? graph.size()
                             : std::min(options.max_tasks, graph.size());
  os << "digraph bpar {\n  rankdir=TB;\n  node [style=filled, "
        "shape=box, fontsize=10];\n";
  for (TaskId id = 0; id < limit; ++id) {
    const Task& t = graph.task(id);
    os << "  t" << id << " [fillcolor=\"" << kind_color(t.spec.kind)
       << "\", label=\"";
    if (options.include_names && !t.spec.name.empty()) {
      os << dot_escape(t.spec.name);
    } else {
      os << task_kind_name(t.spec.kind) << ' ' << id;
    }
    os << "\"];\n";
  }
  for (TaskId id = 0; id < limit; ++id) {
    for (const TaskId succ : graph.task(id).successors) {
      if (succ < limit) os << "  t" << id << " -> t" << succ << ";\n";
    }
  }
  if (limit < graph.size()) {
    os << "  truncated [shape=plaintext, label=\"... "
       << graph.size() - limit << " more tasks\"];\n";
  }
  os << "}\n";
}

void write_dot_file(const TaskGraph& graph, const std::string& path,
                    const DotOptions& options) {
  std::ofstream os(path);
  BPAR_CHECK(os.good(), "cannot open ", path);
  write_dot(graph, os, options);
}

void write_chrome_trace(const TaskGraph& graph,
                        std::span<const TaskTrace> trace, std::ostream& os) {
  BPAR_CHECK(trace.size() == graph.size(),
             "stats have no trace — run with record_trace = true");
  os << "[";
  bool first = true;
  for (TaskId id = 0; id < graph.size(); ++id) {
    const TaskTrace& tr = trace[id];
    const Task& t = graph.task(id);
    if (!first) os << ",";
    first = false;
    const std::string name =
        t.spec.name.empty() ? task_kind_name(t.spec.kind) : t.spec.name;
    os << "\n  {\"name\": " << obs::json_quote(name) << ", \"cat\": \""
       << task_kind_name(t.spec.kind) << "\", \"ph\": \"X\", \"ts\": "
       << static_cast<double>(tr.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(tr.end_ns - tr.start_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << tr.worker << "}";
  }
  os << "\n]\n";
}

void write_chrome_trace(const TaskGraph& graph, const RunStats& stats,
                        std::ostream& os) {
  write_chrome_trace(graph, std::span<const TaskTrace>(stats.trace), os);
}

void write_chrome_trace_file(const TaskGraph& graph, const RunStats& stats,
                             const std::string& path) {
  std::ofstream os(path);
  BPAR_CHECK(os.good(), "cannot open ", path);
  write_chrome_trace(graph, stats, os);
}

void write_unified_trace(const TaskGraph& graph, const RunStats& stats,
                         std::ostream& os) {
  write_unified_trace(graph, stats, os, ExtraTraceEmitter{});
}

void write_unified_trace(const TaskGraph& graph, const RunStats& stats,
                         std::ostream& os, const ExtraTraceEmitter& extra) {
  BPAR_CHECK(stats.trace.size() == graph.size(),
             "stats have no trace — run with record_trace = true");
  // The RunStats trace is session-relative; obs events are absolute
  // steady-clock ns. session_start_ns is the bridge. The export base is
  // the earliest timestamp across both sources, so the timeline starts
  // near zero however the run was captured.
  const std::vector<obs::ThreadTrace> threads = obs::collect();
  std::uint64_t base = obs::earliest_ts(threads);
  for (const TaskTrace& tr : stats.trace) {
    const std::uint64_t abs_start = stats.session_start_ns + tr.start_ns;
    if (base == 0 || abs_start < base) base = abs_start;
  }

  obs::ChromeTraceWriter writer(os);
  constexpr int kPid = 1;
  // Worker rows (tid = worker id) carry the fully named task slices from
  // the RunStats trace; obs ring rows (tid = 100 + ring id) carry spans,
  // counters, and instants, with their kind-level task rows skipped so
  // tasks appear exactly once.
  const int num_workers = static_cast<int>(stats.worker_busy_ns.size());
  for (int w = 0; w < num_workers; ++w) {
    writer.thread_name(kPid, w, "tasks w" + std::to_string(w));
  }
  constexpr int kRingTidBase = 100;
  for (const obs::ThreadTrace& t : threads) {
    std::string label =
        t.name.empty() ? "thread " + std::to_string(t.ring_id) : t.name;
    label += " (spans)";
    if (t.dropped > 0) {
      label += " (dropped " + std::to_string(t.dropped) + ")";
    }
    writer.thread_name(kPid, kRingTidBase + t.ring_id, label);
  }
  const std::vector<std::vector<TaskId>> preds = predecessor_lists(graph);
  for (TaskId id = 0; id < graph.size(); ++id) {
    const TaskTrace& tr = stats.trace[id];
    const Task& t = graph.task(id);
    const std::string name =
        t.spec.name.empty() ? task_kind_name(t.spec.kind) : t.spec.name;
    writer.slice_args(name, task_kind_name(t.spec.kind),
                      stats.session_start_ns + tr.start_ns - base,
                      static_cast<double>(tr.end_ns - tr.start_ns), kPid,
                      tr.worker,
                      task_args_json(id, preds[id], tr.worker, t.spec));
  }
  for (const obs::ThreadTrace& t : threads) {
    obs::write_thread_events(writer, t, kPid, kRingTidBase + t.ring_id, base,
                             /*skip_tasks=*/true);
  }
  if (extra) extra(writer, base);
}

void write_unified_trace_file(const TaskGraph& graph, const RunStats& stats,
                              const std::string& path) {
  write_unified_trace_file(graph, stats, path, ExtraTraceEmitter{});
}

void write_unified_trace_file(const TaskGraph& graph, const RunStats& stats,
                              const std::string& path,
                              const ExtraTraceEmitter& extra) {
  std::ofstream os(path);
  BPAR_CHECK(os.good(), "cannot open ", path);
  write_unified_trace(graph, stats, os, extra);
}

namespace {

obs::analysis::TaskRecord make_task_record(
    TaskId id, const Task& t, const TaskTrace& tr,
    const std::vector<TaskId>& preds) {
  obs::analysis::TaskRecord rec;
  rec.id = id;
  rec.name = t.spec.name.empty() ? task_kind_name(t.spec.kind) : t.spec.name;
  rec.klass = task_kind_name(t.spec.kind);
  rec.layer = t.spec.layer;
  rec.step = t.spec.step;
  rec.worker = tr.worker;
  rec.start_ns = tr.start_ns;
  rec.end_ns = tr.end_ns;
  rec.preds.assign(preds.begin(), preds.end());
  return rec;
}

}  // namespace

obs::analysis::TraceModel make_trace_model(const TaskGraph& graph,
                                           const RunStats& stats) {
  BPAR_CHECK(stats.trace.size() == graph.size(),
             "stats have no trace — run with record_trace = true");
  obs::analysis::TraceModel model;
  model.num_workers = static_cast<int>(stats.worker_busy_ns.size());
  const std::vector<std::vector<TaskId>> preds = predecessor_lists(graph);
  model.tasks.reserve(graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    model.tasks.push_back(
        make_task_record(id, graph.task(id), stats.trace[id], preds[id]));
  }

  // Park/fault spans from the obs rings: worker threads are named
  // "worker N"; spans from before this session are dropped, timestamps
  // shift to the session-relative timebase the task records use.
  const std::uint16_t park_id = obs::intern_name("park");
  const std::uint16_t fault_id = obs::intern_name("fault");
  for (const obs::ThreadTrace& thread : obs::collect()) {
    int worker = -1;
    if (thread.name.rfind("worker ", 0) == 0) {
      worker = std::atoi(thread.name.c_str() + 7);
    }
    if (worker < 0 || worker >= model.num_workers) continue;
    for (const obs::TraceEvent& ev : thread.events) {
      if (ev.kind != obs::EventKind::kSpan ||
          (ev.name != park_id && ev.name != fault_id)) {
        continue;
      }
      if (ev.ts_ns < stats.session_start_ns) continue;  // earlier session
      obs::analysis::WorkerSpan span;
      span.worker = worker;
      span.fault = ev.name == fault_id;
      span.start_ns = ev.ts_ns - stats.session_start_ns;
      span.end_ns =
          span.start_ns + static_cast<std::uint64_t>(ev.duration_ns());
      model.worker_spans.push_back(span);
    }
  }

  model.counters["steals"] = static_cast<double>(stats.steals);
  model.counters["steal_failures"] =
      static_cast<double>(stats.steal_failures);
  model.counters["parks"] = static_cast<double>(stats.parks);
  const std::uint64_t busy = stats.total_busy_ns();
  const std::uint64_t capacity =
      stats.wall_ns * stats.worker_busy_ns.size();
  model.counters["busy_ns"] = static_cast<double>(busy);
  model.counters["idle_ns"] =
      static_cast<double>(capacity > busy ? capacity - busy : 0);
  return model;
}

obs::analysis::TraceModel make_trace_model(const TaskGraph& graph,
                                           std::span<const TaskTrace> trace,
                                           int num_workers) {
  BPAR_CHECK(trace.size() == graph.size(),
             "trace size does not match the graph");
  obs::analysis::TraceModel model;
  const std::vector<std::vector<TaskId>> preds = predecessor_lists(graph);
  model.tasks.reserve(graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    model.tasks.push_back(
        make_task_record(id, graph.task(id), trace[id], preds[id]));
    model.num_workers =
        std::max(model.num_workers, static_cast<int>(trace[id].worker) + 1);
  }
  model.num_workers = std::max(model.num_workers, num_workers);
  return model;
}

std::vector<obs::analysis::ClassHwRow> hw_class_rows(const RunStats& stats) {
  std::vector<obs::analysis::ClassHwRow> rows;
  for (std::size_t k = 0; k < stats.kind_counters.size(); ++k) {
    const RunStats::KindCounters& kc = stats.kind_counters[k];
    if (kc.tasks == 0) continue;
    obs::analysis::ClassHwRow row;
    row.klass = task_kind_name(static_cast<TaskKind>(k));
    row.tasks = kc.tasks;
    row.busy_ns = kc.busy_ns;
    row.ipc = kc.counters.ipc();
    row.mpki = kc.counters.mpki();
    row.branch_mpki = kc.counters.branch_mpki();
    row.llc_miss_rate = kc.counters.llc_miss_rate();
    row.scale = kc.counters.scale;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace bpar::taskrt
