#include "taskrt/export.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "util/check.hpp"

namespace bpar::taskrt {
namespace {

const char* kind_color(TaskKind kind) {
  switch (kind) {
    case TaskKind::kCellForward:
      return "#7aa6c2";
    case TaskKind::kCellBackward:
      return "#c27a7a";
    case TaskKind::kMerge:
      return "#8fc27a";
    case TaskKind::kMergeBackward:
      return "#c2a57a";
    case TaskKind::kLoss:
      return "#b07ac2";
    case TaskKind::kGradReduce:
      return "#c2c07a";
    case TaskKind::kWeightUpdate:
      return "#7ac2b9";
    case TaskKind::kGemmChunk:
      return "#9a9a9a";
    case TaskKind::kBarrier:
      return "#4d4d4d";
    case TaskKind::kGeneric:
      return "#cccccc";
  }
  return "#cccccc";
}

// Graphviz label escape: quotes and backslashes get a backslash; literal
// newlines become the DOT "\n" line-break sequence (a raw newline inside a
// quoted label malforms the file). Other control characters are dropped.
std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void write_dot(const TaskGraph& graph, std::ostream& os,
               const DotOptions& options) {
  const std::size_t limit =
      options.max_tasks == 0 ? graph.size()
                             : std::min(options.max_tasks, graph.size());
  os << "digraph bpar {\n  rankdir=TB;\n  node [style=filled, "
        "shape=box, fontsize=10];\n";
  for (TaskId id = 0; id < limit; ++id) {
    const Task& t = graph.task(id);
    os << "  t" << id << " [fillcolor=\"" << kind_color(t.spec.kind)
       << "\", label=\"";
    if (options.include_names && !t.spec.name.empty()) {
      os << dot_escape(t.spec.name);
    } else {
      os << task_kind_name(t.spec.kind) << ' ' << id;
    }
    os << "\"];\n";
  }
  for (TaskId id = 0; id < limit; ++id) {
    for (const TaskId succ : graph.task(id).successors) {
      if (succ < limit) os << "  t" << id << " -> t" << succ << ";\n";
    }
  }
  if (limit < graph.size()) {
    os << "  truncated [shape=plaintext, label=\"... "
       << graph.size() - limit << " more tasks\"];\n";
  }
  os << "}\n";
}

void write_dot_file(const TaskGraph& graph, const std::string& path,
                    const DotOptions& options) {
  std::ofstream os(path);
  BPAR_CHECK(os.good(), "cannot open ", path);
  write_dot(graph, os, options);
}

void write_chrome_trace(const TaskGraph& graph,
                        std::span<const TaskTrace> trace, std::ostream& os) {
  BPAR_CHECK(trace.size() == graph.size(),
             "stats have no trace — run with record_trace = true");
  os << "[";
  bool first = true;
  for (TaskId id = 0; id < graph.size(); ++id) {
    const TaskTrace& tr = trace[id];
    const Task& t = graph.task(id);
    if (!first) os << ",";
    first = false;
    const std::string name =
        t.spec.name.empty() ? task_kind_name(t.spec.kind) : t.spec.name;
    os << "\n  {\"name\": " << obs::json_quote(name) << ", \"cat\": \""
       << task_kind_name(t.spec.kind) << "\", \"ph\": \"X\", \"ts\": "
       << static_cast<double>(tr.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(tr.end_ns - tr.start_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << tr.worker << "}";
  }
  os << "\n]\n";
}

void write_chrome_trace(const TaskGraph& graph, const RunStats& stats,
                        std::ostream& os) {
  write_chrome_trace(graph, std::span<const TaskTrace>(stats.trace), os);
}

void write_chrome_trace_file(const TaskGraph& graph, const RunStats& stats,
                             const std::string& path) {
  std::ofstream os(path);
  BPAR_CHECK(os.good(), "cannot open ", path);
  write_chrome_trace(graph, stats, os);
}

void write_unified_trace(const TaskGraph& graph, const RunStats& stats,
                         std::ostream& os) {
  BPAR_CHECK(stats.trace.size() == graph.size(),
             "stats have no trace — run with record_trace = true");
  // The RunStats trace is session-relative; obs events are absolute
  // steady-clock ns. session_start_ns is the bridge. The export base is
  // the earliest timestamp across both sources, so the timeline starts
  // near zero however the run was captured.
  const std::vector<obs::ThreadTrace> threads = obs::collect();
  std::uint64_t base = obs::earliest_ts(threads);
  for (const TaskTrace& tr : stats.trace) {
    const std::uint64_t abs_start = stats.session_start_ns + tr.start_ns;
    if (base == 0 || abs_start < base) base = abs_start;
  }

  obs::ChromeTraceWriter writer(os);
  constexpr int kPid = 1;
  // Worker rows (tid = worker id) carry the fully named task slices from
  // the RunStats trace; obs ring rows (tid = 100 + ring id) carry spans,
  // counters, and instants, with their kind-level task rows skipped so
  // tasks appear exactly once.
  const int num_workers = static_cast<int>(stats.worker_busy_ns.size());
  for (int w = 0; w < num_workers; ++w) {
    writer.thread_name(kPid, w, "tasks w" + std::to_string(w));
  }
  constexpr int kRingTidBase = 100;
  for (const obs::ThreadTrace& t : threads) {
    std::string label =
        t.name.empty() ? "thread " + std::to_string(t.ring_id) : t.name;
    label += " (spans)";
    if (t.dropped > 0) {
      label += " (dropped " + std::to_string(t.dropped) + ")";
    }
    writer.thread_name(kPid, kRingTidBase + t.ring_id, label);
  }
  for (TaskId id = 0; id < graph.size(); ++id) {
    const TaskTrace& tr = stats.trace[id];
    const Task& t = graph.task(id);
    const std::string name =
        t.spec.name.empty() ? task_kind_name(t.spec.kind) : t.spec.name;
    writer.slice(name, task_kind_name(t.spec.kind),
                 stats.session_start_ns + tr.start_ns - base,
                 static_cast<double>(tr.end_ns - tr.start_ns), kPid,
                 tr.worker);
  }
  for (const obs::ThreadTrace& t : threads) {
    obs::write_thread_events(writer, t, kPid, kRingTidBase + t.ring_id, base,
                             /*skip_tasks=*/true);
  }
}

void write_unified_trace_file(const TaskGraph& graph, const RunStats& stats,
                              const std::string& path) {
  std::ofstream os(path);
  BPAR_CHECK(os.good(), "cannot open ", path);
  write_unified_trace(graph, stats, os);
}

}  // namespace bpar::taskrt
