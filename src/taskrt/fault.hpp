// Deterministic fault injection for the task runtime.
//
// A FaultSpec describes *which* tasks misbehave and *how*: throw an
// InjectedFault, sleep for a fixed delay, or stall (block until released —
// the watchdog's prey). Decisions are a pure hash of
// (seed, session index, task id), so a fault schedule is reproducible
// run-to-run yet *differs across sessions*: a batch that hits an injected
// throw can be retried (a new runtime session) without hitting the same
// fault forever, which is exactly what the trainer's recovery loop needs.
// Explicit task lists (`stall_tasks`, `throw_tasks`) fire in every session
// — use them to pin a fault to a known task, e.g. to trip the watchdog.
//
// Wiring: RuntimeOptions::faults, or the BPAR_FAULTS environment variable
// (same spec syntax) picked up by any Runtime whose options leave the spec
// empty. When the spec is disabled the runtime's dispatch hot path pays a
// single null-pointer test. Spec syntax (comma-separated key=value):
//
//   seed=42,throw=0.01,delay=0.005,delay_us=200,stall=0.001,stall_tasks=7:19
//
//   seed        hash seed (default 1)
//   throw       per-task probability of throwing InjectedFault
//   delay       per-task probability of sleeping delay_us before running
//   delay_us    delay duration in microseconds (default 200)
//   stall       per-task probability of stalling until released
//   throw_tasks / stall_tasks  colon-separated task ids, every session
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "taskrt/task_graph.hpp"
#include "util/error.hpp"

namespace bpar::taskrt {

/// Thrown by a task into which a `throw` fault was injected. Derives from
/// util::Error so recovery layers can distinguish injected (transient)
/// failures from genuine ones in tests.
class InjectedFault : public util::Error {
 public:
  using util::Error::Error;
};

/// Thrown out of taskwait()/end() when the watchdog detects a stalled
/// graph; what() carries the scheduler-state diagnostic.
class WatchdogError : public util::Error {
 public:
  using util::Error::Error;
};

struct FaultSpec {
  std::uint64_t seed = 1;
  double throw_rate = 0.0;
  double delay_rate = 0.0;
  double stall_rate = 0.0;
  std::uint32_t delay_us = 200;
  std::vector<TaskId> throw_tasks;  // fire in every session
  std::vector<TaskId> stall_tasks;  // fire in every session

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;

  [[nodiscard]] bool enabled() const {
    return throw_rate > 0.0 || delay_rate > 0.0 || stall_rate > 0.0 ||
           !throw_tasks.empty() || !stall_tasks.empty();
  }

  /// Parses the spec syntax documented above. Throws util::Error on
  /// malformed input. An empty string parses to a disabled spec.
  [[nodiscard]] static FaultSpec parse(std::string_view text);
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {}

  /// Called by the runtime when a session begins: advances the session
  /// index that decorrelates fault schedules across retries.
  void begin_session();

  /// Called by a worker immediately before running task `id`. May throw
  /// InjectedFault, sleep, or block until release_stalls().
  void before_execute(TaskId id);

  /// Wakes every stalled task; stalls injected afterwards no longer block.
  /// Called by the watchdog after capturing diagnostics, and by ~Runtime.
  void release_stalls();
  /// Re-arms stalling after release_stalls() (new session, fresh watchdog).
  void rearm_stalls();

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t throws_injected() const {
    return throws_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t delays_injected() const {
    return delays_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stalls_injected() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t faults_injected() const {
    return throws_injected() + delays_injected() + stalls_injected();
  }
  /// Tasks currently blocked in an injected stall.
  [[nodiscard]] int active_stalls() const {
    return active_stalls_.load(std::memory_order_relaxed);
  }

 private:
  /// Uniform in [0, 1), pure in (seed, session, id, salt).
  [[nodiscard]] double roll(TaskId id, std::uint64_t salt) const;
  void stall();

  FaultSpec spec_;
  std::atomic<std::uint64_t> session_{0};
  std::atomic<std::uint64_t> throws_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> stalls_{0};

  std::mutex stall_mu_;
  std::condition_variable stall_cv_;
  bool stalls_released_ = false;  // guarded by stall_mu_
  std::atomic<int> active_stalls_{0};
};

}  // namespace bpar::taskrt
