#include "taskrt/fault.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <thread>

namespace bpar::taskrt {
namespace {

// splitmix64: the standard 64-bit finalizer-style mixer — enough avalanche
// that consecutive task ids decorrelate.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27U)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31U);
}

double parse_double(std::string_view key, std::string_view value) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size() || out < 0.0) {
    BPAR_RAISE(util::Error, "bad fault spec value for '", key, "': '", value,
               "' (want a non-negative number)");
  }
  return out;
}

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    BPAR_RAISE(util::Error, "bad fault spec value for '", key, "': '", value,
               "' (want an unsigned integer)");
  }
  return out;
}

std::vector<TaskId> parse_task_list(std::string_view key,
                                    std::string_view value) {
  std::vector<TaskId> ids;
  while (!value.empty()) {
    const std::size_t colon = value.find(':');
    const std::string_view part = value.substr(0, colon);
    ids.push_back(static_cast<TaskId>(parse_u64(key, part)));
    if (colon == std::string_view::npos) break;
    value.remove_prefix(colon + 1);
  }
  return ids;
}

}  // namespace

FaultSpec FaultSpec::parse(std::string_view text) {
  FaultSpec spec;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    std::string_view item = text.substr(0, comma);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        BPAR_RAISE(util::Error, "bad fault spec item '", item,
                   "' (want key=value)");
      }
      const std::string_view key = item.substr(0, eq);
      const std::string_view value = item.substr(eq + 1);
      if (key == "seed") {
        spec.seed = parse_u64(key, value);
      } else if (key == "throw") {
        spec.throw_rate = parse_double(key, value);
      } else if (key == "delay") {
        spec.delay_rate = parse_double(key, value);
      } else if (key == "delay_us") {
        spec.delay_us = static_cast<std::uint32_t>(parse_u64(key, value));
      } else if (key == "stall") {
        spec.stall_rate = parse_double(key, value);
      } else if (key == "throw_tasks") {
        spec.throw_tasks = parse_task_list(key, value);
      } else if (key == "stall_tasks") {
        spec.stall_tasks = parse_task_list(key, value);
      } else {
        BPAR_RAISE(util::Error, "unknown fault spec key '", key,
                   "' (known: seed, throw, delay, delay_us, stall, "
                   "throw_tasks, stall_tasks)");
      }
    }
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  return spec;
}

void FaultInjector::begin_session() {
  session_.fetch_add(1, std::memory_order_relaxed);
}

double FaultInjector::roll(TaskId id, std::uint64_t salt) const {
  const std::uint64_t h =
      mix64(mix64(spec_.seed ^ (salt * 0xA24BAED4963EE407ULL)) ^
            mix64(session_.load(std::memory_order_relaxed)) ^
            mix64(static_cast<std::uint64_t>(id)));
  // Top 53 bits → uniform double in [0, 1).
  return static_cast<double>(h >> 11U) * 0x1.0p-53;
}

void FaultInjector::before_execute(TaskId id) {
  const auto listed = [id](const std::vector<TaskId>& ids) {
    return std::find(ids.begin(), ids.end(), id) != ids.end();
  };
  if (spec_.stall_rate > 0.0 && roll(id, 3) < spec_.stall_rate) {
    stall();
  } else if (listed(spec_.stall_tasks)) {
    stall();
  }
  if (spec_.delay_rate > 0.0 && roll(id, 2) < spec_.delay_rate) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(spec_.delay_us));
  }
  if ((spec_.throw_rate > 0.0 && roll(id, 1) < spec_.throw_rate) ||
      listed(spec_.throw_tasks)) {
    throws_.fetch_add(1, std::memory_order_relaxed);
    BPAR_RAISE(InjectedFault, "injected fault in task ", id, " (session ",
               session_.load(std::memory_order_relaxed), ")");
  }
}

void FaultInjector::stall() {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  active_stalls_.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(stall_mu_);
    stall_cv_.wait(lock, [this] { return stalls_released_; });
  }
  active_stalls_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::release_stalls() {
  {
    const std::lock_guard<std::mutex> lock(stall_mu_);
    stalls_released_ = true;
  }
  stall_cv_.notify_all();
}

void FaultInjector::rearm_stalls() {
  const std::lock_guard<std::mutex> lock(stall_mu_);
  stalls_released_ = false;
}

}  // namespace bpar::taskrt
