// Low-level synchronization helpers shared by the lock-free scheduler
// structures (work_steal_deque.hpp, ready_fifo.hpp, runtime.cpp).
//
// ThreadSanitizer does not model std::atomic_thread_fence, so algorithms
// that publish data through a release *fence* followed by a relaxed store
// (the classic Chase-Lev formulation) produce false positives under TSAN.
// When TSAN is active every ordering alias below collapses to seq_cst,
// which TSAN reasons about precisely; the fences stay in place and become
// redundant. Outside TSAN the aliases are the plain orderings.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BPAR_TSAN_ACTIVE 1
#endif
#endif
#if !defined(BPAR_TSAN_ACTIVE) && defined(__SANITIZE_THREAD__)
#define BPAR_TSAN_ACTIVE 1
#endif

namespace bpar::taskrt::sync {

#if defined(BPAR_TSAN_ACTIVE)
inline constexpr std::memory_order mo_relaxed = std::memory_order_seq_cst;
inline constexpr std::memory_order mo_acquire = std::memory_order_seq_cst;
inline constexpr std::memory_order mo_release = std::memory_order_seq_cst;
inline constexpr std::memory_order mo_acq_rel = std::memory_order_seq_cst;
#else
inline constexpr std::memory_order mo_relaxed = std::memory_order_relaxed;
inline constexpr std::memory_order mo_acquire = std::memory_order_acquire;
inline constexpr std::memory_order mo_release = std::memory_order_release;
inline constexpr std::memory_order mo_acq_rel = std::memory_order_acq_rel;
#endif
inline constexpr std::memory_order mo_seq_cst = std::memory_order_seq_cst;

/// One iteration of a bounded busy-wait. Uses the CPU pause hint for the
/// first spins (cheap, keeps the core) and falls back to yielding the
/// timeslice, which matters when workers outnumber cores.
inline void spin_pause(int iteration) {
  if (iteration < 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  } else {
    std::this_thread::yield();
  }
}

/// Tiny test-and-test-and-set spinlock. Used per *task* (never global) to
/// order successor-list appends against the one-shot completion snapshot;
/// contention is only possible while the main thread links a new task to a
/// predecessor that is finishing at that exact moment.
class SpinLock {
 public:
  void lock() {
    int spins = 0;
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(mo_relaxed)) spin_pause(spins++);
    }
  }
  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace bpar::taskrt::sync
