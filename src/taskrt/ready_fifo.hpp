// Lock-free multi-producer/multi-consumer FIFO of TaskIds — the global
// ready queue: breadth-first order for the kFifo policy, and the overflow
// path (tasks with no locality preference, tasks published by the main
// thread) for the locality-aware policy.
//
// Design: two monotonically increasing cursors (head_, tail_) index into a
// virtual infinite array realized as fixed-size segments held in a ring
// directory. An enqueue claims slot i = tail_++ and release-stores the id
// into its segment; a dequeue claims a slot by CAS on head_ (only when
// head < tail) and acquire-loads it, briefly spinning if the producer has
// claimed the slot but not yet stored into it. Slots are written and
// consumed exactly once, so no ABA handling is needed.
//
// Segments are reclaimed only at session boundaries (reclaim_consumed(),
// called from Runtime::begin() when the queue is provably empty and no
// worker can be dereferencing a segment), which keeps the hot path free of
// any memory-reclamation protocol. The ring directory bounds the number of
// *live* segments: ~16M tasks may be enqueued within one session, checked.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "taskrt/sync.hpp"
#include "taskrt/task_graph.hpp"
#include "util/check.hpp"

namespace bpar::taskrt {

class ReadyFifo {
 public:
  ReadyFifo() : dir_(new std::atomic<Segment*>[kDirSize]) {
    for (std::size_t i = 0; i < kDirSize; ++i) {
      dir_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  ~ReadyFifo() {
    for (std::size_t i = 0; i < kDirSize; ++i) {
      delete dir_[i].load(std::memory_order_relaxed);
    }
  }

  ReadyFifo(const ReadyFifo&) = delete;
  ReadyFifo& operator=(const ReadyFifo&) = delete;

  /// Any thread. `id` must not be kInvalidTask (the empty-slot sentinel).
  void enqueue(TaskId id) {
    const std::uint64_t i = tail_.fetch_add(1, sync::mo_relaxed);
    // Signed difference: an eager consumer may already have claimed slot i
    // and advanced head_ past it while this store is still pending, making
    // the unsigned distance underflow.
    BPAR_DCHECK(static_cast<std::int64_t>(i - head_.load(sync::mo_relaxed)) <
                    static_cast<std::int64_t>(kDirSize * kSegSize),
                "ready queue outgrew its segment directory");
    Segment* seg = segment_for(i >> kSegBits);
    seg->slots[i & kSegMask].store(id, sync::mo_release);
  }

  /// Any thread. Returns kInvalidTask when the queue is empty.
  TaskId try_dequeue() {
    std::uint64_t h = head_.load(sync::mo_acquire);
    for (;;) {
      if (h >= tail_.load(sync::mo_acquire)) return kInvalidTask;
      if (head_.compare_exchange_weak(h, h + 1, sync::mo_acq_rel,
                                      sync::mo_acquire)) {
        break;
      }
    }
    // Slot h is ours. The producer that claimed it stores right after its
    // fetch_add, so these waits are a handful of cycles at most.
    int spins = 0;
    Segment* seg;
    while ((seg = dir_[(h >> kSegBits) & (kDirSize - 1)].load(
                sync::mo_acquire)) == nullptr) {
      sync::spin_pause(spins++);
    }
    TaskId id;
    while ((id = seg->slots[h & kSegMask].load(sync::mo_acquire)) ==
           kInvalidTask) {
      sync::spin_pause(spins++);
    }
    return id;
  }

  [[nodiscard]] bool empty_approx() const {
    return head_.load(sync::mo_relaxed) >= tail_.load(sync::mo_relaxed);
  }

  // Racy cursor snapshots — diagnostics (watchdog scheduler dump) only.
  [[nodiscard]] std::uint64_t head_approx() const {
    return head_.load(sync::mo_relaxed);
  }
  [[nodiscard]] std::uint64_t tail_approx() const {
    return tail_.load(sync::mo_relaxed);
  }
  [[nodiscard]] std::uint64_t size_approx() const {
    const std::uint64_t h = head_approx();
    const std::uint64_t t = tail_approx();
    return t > h ? t - h : 0;
  }

  /// Quiescent only (no concurrent enqueue/dequeue can win a slot: the
  /// queue is empty and stays empty for the duration of the call). Frees
  /// every fully consumed segment.
  void reclaim_consumed() {
    const std::uint64_t first_live =
        head_.load(std::memory_order_relaxed) >> kSegBits;
    while (reclaim_floor_ < first_live) {
      delete dir_[reclaim_floor_ & (kDirSize - 1)].exchange(
          nullptr, std::memory_order_relaxed);
      ++reclaim_floor_;
    }
  }

 private:
  static constexpr std::size_t kSegBits = 11;  // 2048 tasks per segment
  static constexpr std::size_t kSegSize = std::size_t{1} << kSegBits;
  static constexpr std::size_t kSegMask = kSegSize - 1;
  static constexpr std::size_t kDirSize = std::size_t{1} << 13;

  struct Segment {
    Segment() {
      for (auto& slot : slots) {
        slot.store(kInvalidTask, std::memory_order_relaxed);
      }
    }
    std::atomic<TaskId> slots[kSegSize];
  };

  Segment* segment_for(std::uint64_t n) {
    std::atomic<Segment*>& cell = dir_[n & (kDirSize - 1)];
    Segment* seg = cell.load(sync::mo_acquire);
    if (seg != nullptr) return seg;
    auto fresh = std::make_unique<Segment>();
    if (cell.compare_exchange_strong(seg, fresh.get(), sync::mo_acq_rel,
                                     sync::mo_acquire)) {
      return fresh.release();
    }
    return seg;  // another producer installed it first
  }

  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::unique_ptr<std::atomic<Segment*>[]> dir_;
  std::uint64_t reclaim_floor_ = 0;  // only touched in reclaim_consumed()
};

}  // namespace bpar::taskrt
