#include "taskrt/task_graph.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace bpar::taskrt {

const char* task_kind_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kGeneric:
      return "generic";
    case TaskKind::kCellForward:
      return "cell_fwd";
    case TaskKind::kCellBackward:
      return "cell_bwd";
    case TaskKind::kMerge:
      return "merge";
    case TaskKind::kMergeBackward:
      return "merge_bwd";
    case TaskKind::kLoss:
      return "loss";
    case TaskKind::kGradReduce:
      return "grad_reduce";
    case TaskKind::kWeightUpdate:
      return "weight_update";
    case TaskKind::kGemmChunk:
      return "gemm_chunk";
    case TaskKind::kBarrier:
      return "barrier";
    case TaskKind::kCellForwardFused:
      return "cell_fwd_fused";
    case TaskKind::kInputPrecompute:
      return "input_precompute";
    case TaskKind::kCoarsened:
      return "coarsened";
  }
  return "unknown";
}

TaskId TaskGraph::add(std::function<void()> fn,
                      std::span<const Access> accesses, TaskSpec spec,
                      std::vector<TaskId>* preds_out) {
  const TaskId id =
      add_unlinked(std::move(fn), accesses, std::move(spec), preds_out);
  for (const TaskId pred : scratch_preds_) add_edge(pred, id);
  return id;
}

TaskId TaskGraph::add_unlinked(std::function<void()> fn,
                               std::span<const Access> accesses, TaskSpec spec,
                               std::vector<TaskId>* preds_out) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  BPAR_CHECK(id != kInvalidTask, "task graph overflow");
  tasks_.emplace_back();
  Task& t = tasks_.back();
  t.fn = std::move(fn);
  t.spec = std::move(spec);

  scratch_preds_.clear();
  bool affinity_set = false;
  for (const Access& acc : accesses) {
    BPAR_CHECK(acc.addr != nullptr, "null dependency address in task ",
               t.spec.name);
    AddressState& state = address_table_[acc.addr];
    const bool reads =
        acc.mode == AccessMode::kIn || acc.mode == AccessMode::kInOut;
    const bool writes =
        acc.mode == AccessMode::kOut || acc.mode == AccessMode::kInOut;
    // A task may legally list the same address several times (or overlap
    // in/out on it); accesses to its own earlier effects never create
    // self-dependencies.
    if (reads) {
      if (state.last_writer != kInvalidTask && state.last_writer != id) {
        scratch_preds_.push_back(state.last_writer);
        if (!affinity_set) {
          t.affinity_pred = state.last_writer;
          affinity_set = true;
        }
      }
    }
    if (writes) {
      if (state.last_writer != kInvalidTask && state.last_writer != id) {
        scratch_preds_.push_back(state.last_writer);  // WAW
      }
      for (const TaskId reader : state.readers_since_write) {
        if (reader != id) scratch_preds_.push_back(reader);  // WAR
      }
      state.readers_since_write.clear();
      state.last_writer = id;
    } else if (reads) {
      state.readers_since_write.push_back(id);
    }
  }

  std::sort(scratch_preds_.begin(), scratch_preds_.end());
  scratch_preds_.erase(
      std::unique(scratch_preds_.begin(), scratch_preds_.end()),
      scratch_preds_.end());
  if (preds_out != nullptr) *preds_out = scratch_preds_;
  return id;
}

void TaskGraph::link(TaskId pred, TaskId succ) {
  BPAR_DCHECK(pred < succ, "dependency on future task");
  add_edge(pred, succ);
}

void TaskGraph::add_edge(TaskId pred, TaskId succ) {
  tasks_[pred].successors.push_back(succ);
  ++tasks_[succ].num_deps;
  ++edge_count_;
}

std::vector<TaskId> TaskGraph::roots() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].num_deps == 0) out.push_back(id);
  }
  return out;
}

std::size_t TaskGraph::critical_path_length() const {
  // Tasks are created in topological order, so a single forward pass works.
  std::vector<std::size_t> depth(tasks_.size(), 1);
  std::size_t best = tasks_.empty() ? 0 : 1;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    for (const TaskId succ : tasks_[id].successors) {
      depth[succ] = std::max(depth[succ], depth[id] + 1);
      best = std::max(best, depth[succ]);
    }
  }
  return best;
}

std::uint64_t TaskGraph::critical_path_cost(
    std::span<const std::uint64_t> cost_ns) const {
  BPAR_CHECK(cost_ns.size() == tasks_.size(), "cost vector size mismatch");
  std::vector<std::uint64_t> finish(tasks_.size());
  std::uint64_t best = 0;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    finish[id] += cost_ns[id];
    best = std::max(best, finish[id]);
    for (const TaskId succ : tasks_[id].successors) {
      finish[succ] = std::max(finish[succ], finish[id]);
    }
  }
  return best;
}

bool TaskGraph::reaches(TaskId pred, TaskId succ) const {
  if (pred >= succ) return pred == succ;
  std::vector<bool> seen(tasks_.size(), false);
  std::queue<TaskId> frontier;
  frontier.push(pred);
  seen[pred] = true;
  while (!frontier.empty()) {
    const TaskId cur = frontier.front();
    frontier.pop();
    for (const TaskId next : tasks_[cur].successors) {
      if (next == succ) return true;
      if (next <= succ && !seen[next]) {
        seen[next] = true;
        frontier.push(next);
      }
    }
  }
  return false;
}

void TaskGraph::seal() {
  address_table_.clear();
  address_table_.rehash(0);
  scratch_preds_.shrink_to_fit();
}

}  // namespace bpar::taskrt
