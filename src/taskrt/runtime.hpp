// Threaded execution of a TaskGraph — the run-time system software of the
// paper's §III-B: a worker pool consuming a ready queue of tasks whose
// dependencies are fulfilled.
//
// Two execution modes:
//  * run(graph)   — execute a fully built graph (blocking);
//  * begin/submit/taskwait/end — OmpSs-style *dynamic* task creation: the
//    main thread keeps submitting tasks while workers already execute
//    earlier ones, which is how B-Par "adjusts the computation graph
//    dynamically at run-time" for variable sequence lengths (paper
//    §III-B).
//
// Two scheduling policies (paper §IV-A):
//  * kFifo — a single global FIFO ready queue ("breadth-first"), no
//    locality: any idle worker takes the oldest ready task.
//  * kLocalityAware — when a task completes, ready successors whose primary
//    input was produced by that task are enqueued on the producing worker's
//    local queue, so consumers run where their data is cache-hot; idle
//    workers fall back to the global queue, then steal (never a queue's
//    last entry — that one stays reserved for its cache-hot owner).
//
// Workers are persistent across runs. Tasks may throw: the first exception
// is captured and rethrown from run()/end() after the graph drains.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "taskrt/task_graph.hpp"

namespace bpar::taskrt {

enum class SchedulerPolicy { kFifo, kLocalityAware };

[[nodiscard]] const char* scheduler_policy_name(SchedulerPolicy policy);

struct RuntimeOptions {
  int num_workers = 0;  // 0 → hardware_concurrency()
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  bool record_trace = false;  // keep per-task (start, end, worker) tuples
  bool pin_threads = false;   // best-effort core pinning (Linux)
};

struct TaskTrace {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::int32_t worker = -1;
};

struct RunStats {
  std::uint64_t wall_ns = 0;
  std::size_t tasks_executed = 0;
  std::int32_t max_concurrency = 0;
  std::size_t tasks_with_affinity = 0;
  std::size_t locality_hits = 0;  // ran on the preferred (producer's) worker
  std::vector<std::uint64_t> task_duration_ns;   // indexed by TaskId
  std::vector<std::uint64_t> worker_busy_ns;     // indexed by worker
  std::vector<TaskTrace> trace;                  // empty unless record_trace

  [[nodiscard]] double wall_ms() const {
    return static_cast<double>(wall_ns) / 1e6;
  }
  /// Sum of task durations / (workers * wall) — parallel efficiency.
  [[nodiscard]] double parallel_efficiency() const;
  [[nodiscard]] std::uint64_t total_busy_ns() const;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes every task in `graph`, respecting dependencies. Blocking.
  /// The graph can be re-run (execution state is external to the graph).
  RunStats run(TaskGraph& graph);

  // ---- dynamic (OmpSs-style) sessions ----

  /// Starts a session over `graph` (usually empty). Tasks already in the
  /// graph are scheduled immediately; more can be submitted while workers
  /// execute. The graph must outlive the session.
  void begin(TaskGraph& graph);
  /// Adds one task; it becomes runnable the moment its dependencies (among
  /// previously submitted tasks) are fulfilled. Only the thread that called
  /// begin() may submit.
  TaskId submit(std::function<void()> fn, std::span<const Access> accesses,
                TaskSpec spec = {});
  TaskId submit(std::function<void()> fn,
                std::initializer_list<Access> accesses, TaskSpec spec = {}) {
    return submit(std::move(fn),
                  std::span<const Access>(accesses.begin(), accesses.size()),
                  std::move(spec));
  }
  /// Blocks until every task submitted so far has executed (OmpSs
  /// `taskwait`). More submissions may follow.
  void taskwait();
  /// taskwait() + finalize; returns the session's stats and rethrows the
  /// first task exception, if any.
  RunStats end();

  /// Convenience fork-join: fn(i) for i in [begin, end), chunked by grain.
  /// Used by the per-layer-barrier baseline executors for intra-op
  /// parallelism.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  [[nodiscard]] int num_workers() const { return num_workers_; }
  [[nodiscard]] SchedulerPolicy policy() const { return options_.policy; }

 private:
  void worker_loop(int worker_id);
  /// Pops the next task for `worker_id` per policy; blocks until one is
  /// available or shutdown. Returns kInvalidTask on spurious wakes.
  TaskId next_task(int worker_id, std::unique_lock<std::mutex>& lock);
  void enqueue_ready(TaskId id);
  /// Publishes task `id` into the session (pending counts, ready queues).
  /// Caller holds mu_.
  void publish(TaskId id, const std::vector<TaskId>& preds);
  std::uint64_t now_ns() const;

  RuntimeOptions options_;
  int num_workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;

  // Session state, valid while session_active_. All mutation under mu_.
  bool session_active_ = false;
  TaskGraph* graph_ = nullptr;
  std::deque<std::uint32_t> pending_;      // unmet deps per task
  std::deque<bool> completed_;             // per task
  std::deque<std::int32_t> preferred_;     // locality hint per task
  std::deque<std::uint64_t> durations_;    // per task, ns
  std::deque<TaskTrace> traces_;           // per task (if record_trace)
  std::deque<TaskId> global_queue_;
  std::vector<std::deque<TaskId>> local_queues_;
  std::size_t executed_ = 0;
  std::size_t submitted_ = 0;
  std::int32_t active_ = 0;
  std::int32_t max_active_ = 0;
  std::size_t locality_hits_ = 0;
  std::size_t tasks_with_affinity_ = 0;
  std::vector<std::uint64_t> worker_busy_ns_;
  std::exception_ptr first_error_;
  std::chrono::steady_clock::time_point session_start_;
  std::vector<TaskId> scratch_preds_;

  std::vector<std::thread> workers_;
};

}  // namespace bpar::taskrt
