// Threaded execution of a TaskGraph — the run-time system software of the
// paper's §III-B: a worker pool consuming ready tasks whose dependencies
// are fulfilled.
//
// Two execution modes:
//  * run(graph)   — execute a fully built graph (blocking);
//  * begin/submit/taskwait/end — OmpSs-style *dynamic* task creation: the
//    main thread keeps submitting tasks while workers already execute
//    earlier ones, which is how B-Par "adjusts the computation graph
//    dynamically at run-time" for variable sequence lengths (paper
//    §III-B).
//
// Two scheduling policies (paper §IV-A):
//  * kFifo — a single global FIFO ready queue ("breadth-first"), no
//    locality: any idle worker takes the oldest ready task.
//  * kLocalityAware — when a task completes, ready successors whose primary
//    input was produced by that task are pushed onto the producing worker's
//    own deque, so consumers run where their data is cache-hot; idle
//    workers fall back to the global queue, then steal from the *cold* top
//    end of sibling deques (never a deque's last entry — that one stays
//    reserved for its cache-hot owner).
//
// The dispatch hot path is lock-free in steady state (see DESIGN.md
// §task-runtime): per-worker Chase-Lev deques (owner pushes/pops bottom,
// thieves steal top), a lock-free segmented MPMC FIFO for the global
// queue, atomic per-task dependency counters, and atomic
// executed/submitted counters for taskwait()/end(). Idle workers park on a
// condition variable only after repeated failed steal sweeps; producers
// wake them only when sleepers are registered. The global mutex `mu_` is
// taken only for begin()/submit() graph mutation, error capture, and
// taskwait()/end() blocking.
//
// Workers are persistent across runs. Tasks may throw: the first exception
// is captured and rethrown from run()/end() after the graph drains.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "perf/perf_events.hpp"
#include "taskrt/fault.hpp"
#include "taskrt/ready_fifo.hpp"
#include "taskrt/task_graph.hpp"
#include "taskrt/work_steal_deque.hpp"

namespace bpar::taskrt {

enum class SchedulerPolicy { kFifo, kLocalityAware };

[[nodiscard]] const char* scheduler_policy_name(SchedulerPolicy policy);

struct RuntimeOptions {
  int num_workers = 0;  // 0 → hardware_concurrency()
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  bool record_trace = false;  // keep per-task (start, end, worker) tuples
  bool pin_threads = false;   // best-effort core pinning (Linux)
  /// Watchdog deadline: if no task completes for this long while the graph
  /// is undrained, taskwait()/end() throws WatchdogError carrying a
  /// scheduler-state dump instead of hanging. 0 disables. Must exceed the
  /// longest individual task.
  std::uint32_t watchdog_ms = 0;
  /// Deterministic fault injection (see fault.hpp). Disabled by default;
  /// when disabled here, the BPAR_FAULTS environment variable is consulted
  /// unless read_fault_env is false.
  FaultSpec faults{};
  bool read_fault_env = true;
  /// Per-task-class hardware counters: every worker opens thread-scope
  /// perf events and slices one running session into per-task deltas
  /// (RunStats::kind_counters). No-op when perf_event_open is denied —
  /// kind_counters stays empty and execution proceeds normally.
  bool sample_counters = false;
};

struct TaskTrace {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::int32_t worker = -1;
};

struct RunStats {
  std::uint64_t wall_ns = 0;
  std::size_t tasks_executed = 0;
  std::int32_t max_concurrency = 0;
  std::size_t tasks_with_affinity = 0;
  std::size_t locality_hits = 0;  // ran on the preferred (producer's) worker
  // Scheduler pressure counters (also published to the obs metrics
  // registry under the "taskrt." prefix at end()).
  std::size_t steals = 0;          // successful steals from sibling deques
  std::size_t steal_failures = 0;  // full sweeps that found nothing
  std::size_t parks = 0;           // times a worker went to sleep
  std::size_t fifo_pushes = 0;     // ready tasks routed to the global FIFO
  std::size_t deque_pushes = 0;    // ready tasks routed to a local deque
  /// Session start in absolute steady-clock ns — the offset that aligns
  /// `trace` (session-relative) with obs span timestamps (absolute).
  std::uint64_t session_start_ns = 0;
  std::vector<std::uint64_t> task_duration_ns;   // indexed by TaskId
  std::vector<std::uint64_t> worker_busy_ns;     // indexed by worker
  std::vector<TaskTrace> trace;                  // empty unless record_trace

  /// Hardware counters attributed to one task kind (summed over every
  /// sampled task body of that kind, multiplex-scaled per interval).
  struct KindCounters {
    std::size_t tasks = 0;         // task bodies sampled
    std::uint64_t busy_ns = 0;     // their summed duration
    perf::CounterSample counters;
  };
  /// Indexed by TaskKind; empty unless RuntimeOptions::sample_counters was
  /// set AND at least one worker's perf events opened.
  std::vector<KindCounters> kind_counters;

  [[nodiscard]] double wall_ms() const {
    return static_cast<double>(wall_ns) / 1e6;
  }
  /// Sum of task durations / (workers * wall) — parallel efficiency.
  [[nodiscard]] double parallel_efficiency() const;
  [[nodiscard]] std::uint64_t total_busy_ns() const;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes every task in `graph`, respecting dependencies. Blocking.
  /// The graph can be re-run (execution state is external to the graph).
  RunStats run(TaskGraph& graph);

  // ---- dynamic (OmpSs-style) sessions ----

  /// Starts a session over `graph` (usually empty). Tasks already in the
  /// graph are scheduled immediately; more can be submitted while workers
  /// execute. The graph must outlive the session.
  void begin(TaskGraph& graph);
  /// Adds one task; it becomes runnable the moment its dependencies (among
  /// previously submitted tasks) are fulfilled. Only the thread that called
  /// begin() may submit.
  TaskId submit(std::function<void()> fn, std::span<const Access> accesses,
                TaskSpec spec = {});
  TaskId submit(std::function<void()> fn,
                std::initializer_list<Access> accesses, TaskSpec spec = {}) {
    return submit(std::move(fn),
                  std::span<const Access>(accesses.begin(), accesses.size()),
                  std::move(spec));
  }
  /// First-class independent task: no accesses, so no dependency on any
  /// other task and no traffic through the address table — in particular
  /// no synthetic addresses that could alias a caller's real buffers.
  /// Ready immediately.
  TaskId submit(std::function<void()> fn, TaskSpec spec = {}) {
    return submit(std::move(fn), std::span<const Access>{}, std::move(spec));
  }
  /// Blocks until every task submitted so far has executed (OmpSs
  /// `taskwait`). More submissions may follow.
  void taskwait();
  /// taskwait() + finalize; returns the session's stats and rethrows the
  /// first task exception, if any.
  RunStats end();

  /// Convenience fork-join: fn(i) for i in [begin, end), chunked by grain.
  /// Used by the per-layer-barrier baseline executors for intra-op
  /// parallelism. Chunks are independent tasks (no dependency addresses).
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  [[nodiscard]] int num_workers() const { return num_workers_; }
  [[nodiscard]] SchedulerPolicy policy() const { return options_.policy; }

  /// The active fault injector, or nullptr when injection is disabled.
  [[nodiscard]] FaultInjector* fault_injector() {
    return fault_injector_.get();
  }

  /// True once a watchdog failure left the graph undrained (workers may be
  /// wedged): the next session will BPAR_CHECK-fail. Owners that want to
  /// keep serving must discard this runtime and build a fresh one — the
  /// serving engine's rebuild_executor() path. Call between sessions only.
  [[nodiscard]] bool poisoned() const { return poisoned_; }

  /// Human-readable scheduler state (deque depths, FIFO cursors, pending
  /// histogram, oldest unfinished task) — what WatchdogError::what()
  /// carries. Callable any time; outside a session it reports that.
  [[nodiscard]] std::string scheduler_state_dump();

 private:
  // Per-task execution state, separate from the graph so a graph can be
  // re-run. Cache-line sized: adjacent tasks' counters never false-share.
  struct alignas(64) TaskState {
    std::atomic<std::uint32_t> pending{0};  // unmet deps (+1 publish bias)
    std::atomic<std::int32_t> preferred{-1};  // locality hint (worker id)
    sync::SpinLock succ_lock;  // orders link() vs the completion snapshot
    bool completed = false;    // guarded by succ_lock
    const Task* task = nullptr;      // stable (deque storage in TaskGraph)
    TaskId affinity = kInvalidTask;  // copy of task->affinity_pred
    std::uint64_t duration_ns = 0;   // written by the executing worker only
    TaskTrace trace;
  };

  // Everything one worker touches every task, padded apart from siblings.
  struct alignas(64) Worker {
    WorkStealingDeque deque;
    std::vector<TaskId> succ_scratch;  // completion-snapshot buffer
    std::uint64_t busy_ns = 0;
    std::uint32_t trace_tick = 0;  // queue-depth counter sampling phase
    // Thread-scope PMU, created (and only ever touched) by the owning
    // worker thread at loop entry when sample_counters is on.
    std::unique_ptr<perf::PerfCounters> pmu;
    std::vector<RunStats::KindCounters> kind_counters;  // by TaskKind
  };

  static constexpr std::size_t kStateChunkBits = 10;  // 1024 states/chunk
  static constexpr std::size_t kStateChunkSize = std::size_t{1}
                                                 << kStateChunkBits;
  static constexpr std::size_t kMaxStateChunks = 4096;  // ~4.2M tasks/session

  void worker_loop(int worker_id);
  /// Finds the next task for `worker_id`: own deque, global FIFO, then a
  /// steal sweep; parks after repeated failures. kInvalidTask ⇒ shutdown.
  TaskId next_task(int worker_id);
  void execute_task(TaskId id, int worker_id);
  /// Routes a ready task: producer's own deque when the locality hint says
  /// so (`from_worker` is the enqueuing worker, -1 for the main thread),
  /// else the global FIFO. Wakes a parked worker if any.
  void enqueue_ready(TaskId id, int from_worker);
  /// Publishes task `id` into the session: initializes its TaskState and
  /// links predecessor edges with the completion-safe protocol. Caller
  /// holds mu_. Returns the state (pending still holds the publish bias).
  TaskState& publish(TaskId id, const std::vector<TaskId>& preds);
  TaskState& init_state(TaskId id);
  [[nodiscard]] TaskState& state(TaskId id) const {
    return state_chunks_[id >> kStateChunkBits].load(sync::mo_acquire)
        [id & (kStateChunkSize - 1)];
  }
  /// Drops the publish bias; enqueues the task if it became ready.
  void release_publish_bias(TaskId id);
  void notify_workers();
  [[nodiscard]] bool has_visible_work(int worker_id) const;
  std::uint64_t now_ns() const;
  /// Blocks until executed == submitted. With a watchdog configured, fires
  /// on no-progress deadlines: captures diagnostics, releases injected
  /// stalls, and throws WatchdogError (closing the session; the runtime is
  /// poisoned if the graph still does not drain). Caller holds `lock`.
  void wait_drained(std::unique_lock<std::mutex>& lock);
  /// Diagnostic text; caller holds mu_ and a session is active.
  [[nodiscard]] std::string dump_locked(const std::string& headline);

  RuntimeOptions options_;
  int num_workers_;
  int steal_min_keep_;  // 1 under kLocalityAware (reserve the hot entry)
  std::unique_ptr<FaultInjector> fault_injector_;  // null when disabled

  // Pre-interned obs trace name ids (resolved once at construction so the
  // hot path never touches the intern table): task rows are labeled by
  // TaskKind, counter tracks sample queue depths per completion.
  std::uint16_t obs_kind_ids_[kNumTaskKinds] = {};
  std::uint16_t obs_fifo_depth_id_ = 0;
  std::uint16_t obs_steal_id_ = 0;
  std::uint16_t obs_park_id_ = 0;
  std::uint16_t obs_fault_id_ = 0;
  std::uint16_t obs_taskwait_id_ = 0;
  std::vector<std::uint16_t> obs_deque_depth_ids_;

  // --- cold path: session setup, blocking waits, error capture ---
  std::mutex mu_;
  std::condition_variable done_cv_;
  bool session_active_ = false;  // main thread only
  bool poisoned_ = false;  // watchdog fired and the graph never drained
  TaskGraph* graph_ = nullptr;   // main thread only
  std::exception_ptr first_error_;  // guarded by mu_
  std::size_t tasks_with_affinity_ = 0;  // main thread only
  std::chrono::steady_clock::time_point session_start_;
  std::vector<TaskId> scratch_preds_;  // main thread only

  // --- parking lot ---
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<std::uint64_t> park_epoch_{0};
  std::atomic<std::int32_t> sleepers_{0};
  std::atomic<bool> shutdown_{false};

  // --- lock-free steady state ---
  alignas(64) std::atomic<std::size_t> executed_{0};
  alignas(64) std::atomic<std::size_t> submitted_{0};  // written under mu_
  alignas(64) std::atomic<std::int32_t> active_{0};
  std::atomic<std::int32_t> max_active_{0};
  std::atomic<std::size_t> locality_hits_{0};
  std::atomic<std::size_t> steals_{0};
  std::atomic<std::size_t> steal_failures_{0};
  std::atomic<std::size_t> parks_{0};
  std::atomic<std::size_t> fifo_pushes_{0};
  std::atomic<std::size_t> deque_pushes_{0};
  std::atomic<std::int32_t> pmu_workers_{0};  // workers whose PMU opened
  std::uint64_t session_start_steady_ns_ = 0;  // main thread only
  std::unique_ptr<std::atomic<TaskState*>[]> state_chunks_;
  ReadyFifo ready_fifo_;
  std::unique_ptr<Worker[]> workers_;
  std::vector<std::thread> threads_;
};

}  // namespace bpar::taskrt
