// Chase-Lev work-stealing deque of TaskIds (Chase & Lev, SPAA'05), with the
// C11 memory orderings of Lê et al., "Correct and Efficient Work-Stealing
// for Weak Memory Models" (PPoPP'13).
//
// Single owner, many thieves:
//   * the owner pushes and pops at the *bottom* — LIFO order, so the task
//     it just made ready (whose inputs are hot in its cache) runs next;
//   * thieves steal from the *top* — the oldest, coldest task, leaving the
//     owner's cache-hot work alone.
//
// The circular buffer grows on demand; retired buffers are kept until the
// deque is destroyed because a concurrent thief may still read a stale
// buffer pointer (the element it reads is protected by the CAS on top_, so
// the memory only has to stay mapped, not current).
//
// Indices are signed 64-bit and monotonically increasing: at one task per
// nanosecond they last ~290 years, so sessions never need to reset them.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "taskrt/sync.hpp"
#include "taskrt/task_graph.hpp"

namespace bpar::taskrt {

class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(std::int64_t initial_capacity = 256)
      : array_(new Array(initial_capacity)) {}

  ~WorkStealingDeque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* retired : retired_) delete retired;
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: makes `id` the next task the owner will pop.
  void push(TaskId id) {
    const std::int64_t b = bottom_.load(sync::mo_relaxed);
    const std::int64_t t = top_.load(sync::mo_acquire);
    Array* a = array_.load(sync::mo_relaxed);
    if (b - t > a->capacity - 1) a = grow(a, t, b);
    a->put(b, id);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, sync::mo_relaxed);
  }

  /// Owner only: takes the most recently pushed task, or kInvalidTask.
  TaskId pop() {
    const std::int64_t b = bottom_.load(sync::mo_relaxed) - 1;
    Array* a = array_.load(sync::mo_relaxed);
    bottom_.store(b, sync::mo_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(sync::mo_relaxed);
    TaskId id = kInvalidTask;
    if (t <= b) {
      id = a->get(b);
      if (t == b) {
        // Last element: race the thieves for it via top_.
        if (!top_.compare_exchange_strong(t, t + 1, sync::mo_seq_cst,
                                          sync::mo_relaxed)) {
          id = kInvalidTask;
        }
        bottom_.store(b + 1, sync::mo_relaxed);
      }
    } else {
      bottom_.store(b + 1, sync::mo_relaxed);
    }
    return id;
  }

  /// Thief: takes the *oldest* task, or kInvalidTask when the deque is
  /// empty, the CAS raced, or fewer than `min_keep + 1` entries remain.
  /// `min_keep = 1` implements the locality reservation: the last entry is
  /// left for its cache-hot owner.
  TaskId steal(int min_keep) {
    std::int64_t t = top_.load(sync::mo_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(sync::mo_acquire);
    if (b - t < min_keep + 1) return kInvalidTask;
    Array* a = array_.load(sync::mo_acquire);
    const TaskId id = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, sync::mo_seq_cst,
                                      sync::mo_relaxed)) {
      return kInvalidTask;
    }
    return id;
  }

  /// Approximate: whether a thief passing `min_keep` could take something.
  [[nodiscard]] bool stealable(int min_keep) const {
    return bottom_.load(sync::mo_relaxed) - top_.load(sync::mo_relaxed) >=
           min_keep + 1;
  }

  [[nodiscard]] bool empty_approx() const {
    return bottom_.load(sync::mo_relaxed) <= top_.load(sync::mo_relaxed);
  }

  /// Approximate depth (racy snapshot) — diagnostics only.
  [[nodiscard]] std::int64_t size_approx() const {
    const std::int64_t d =
        bottom_.load(sync::mo_relaxed) - top_.load(sync::mo_relaxed);
    return d > 0 ? d : 0;
  }

 private:
  struct Array {
    explicit Array(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<TaskId>[cap]) {}
    ~Array() { delete[] slots; }
    void put(std::int64_t i, TaskId id) {
      slots[i & mask].store(id, sync::mo_relaxed);
    }
    [[nodiscard]] TaskId get(std::int64_t i) const {
      return slots[i & mask].load(sync::mo_relaxed);
    }
    const std::int64_t capacity;
    const std::int64_t mask;  // capacity is a power of two
    std::atomic<TaskId>* const slots;
  };

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    Array* bigger = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    array_.store(bigger, sync::mo_release);
    retired_.push_back(old);  // owner-only; freed in the destructor
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_;
  std::vector<Array*> retired_;
};

}  // namespace bpar::taskrt
