// Task graph with OmpSs/OpenMP-style address-based dependencies.
//
// This is the data structure behind B-Par's `#pragma omp task in(...)
// out(...)` annotations (paper Algorithms 1-3). Client code submits tasks
// together with the memory regions they read (`kIn`) and write (`kOut` /
// `kInOut`); the graph derives RAW, WAR, and WAW edges exactly like an
// OpenMP `depend` clause would:
//
//   * a reader depends on the last writer of each of its input addresses;
//   * a writer depends on the last writer AND on every reader that appeared
//     since that write (WAR), and then becomes the new last writer.
//
// Construction is sequential (matching the paper: the main thread walks
// Algorithms 2/3 creating tasks in topological order); execution is handled
// by `Runtime` (threaded) or `sim::Simulator` (discrete-event, for core
// counts this machine does not have).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace bpar::taskrt {

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

enum class AccessMode { kIn, kOut, kInOut };

struct Access {
  const void* addr = nullptr;
  AccessMode mode = AccessMode::kIn;
};

inline Access in(const void* addr) { return {addr, AccessMode::kIn}; }
inline Access out(const void* addr) { return {addr, AccessMode::kOut}; }
inline Access inout(const void* addr) { return {addr, AccessMode::kInOut}; }

/// Task classification, used for statistics, tracing, and the simulator's
/// cost/cache models.
enum class TaskKind : std::uint8_t {
  kGeneric,
  kCellForward,   // one RNN cell update, forward propagation
  kCellBackward,  // one RNN cell update, backward propagation (BPTT)
  kMerge,         // Eq. 11 merge of forward/reverse outputs
  kMergeBackward,
  kLoss,
  kGradReduce,    // cross-mini-batch gradient reduction
  kWeightUpdate,
  kGemmChunk,     // intra-op row chunk (baseline emulation)
  kBarrier,       // explicit per-layer barrier (baseline emulation)
  kCellForwardFused,  // wide-gate fused forward cell (graph passes)
  kInputPrecompute,   // sequence-wide input-projection GEMM (graph passes)
  kCoarsened,         // dispatch-amortizing fusion of tiny adjacent tasks
};

inline constexpr std::size_t kNumTaskKinds =
    static_cast<std::size_t>(TaskKind::kCoarsened) + 1;

[[nodiscard]] const char* task_kind_name(TaskKind kind);

struct TaskSpec {
  std::string name;                    // diagnostic label
  TaskKind kind = TaskKind::kGeneric;
  std::uint64_t cost_hint_ns = 0;      // simulator cost when not measured
  double flops = 0.0;                  // arithmetic work (simulator cost model)
  std::size_t working_set_bytes = 0;   // data the task touches (cache model)
  std::int32_t layer = -1;             // network layer, -1 if n/a
  std::int32_t step = -1;              // timestep, -1 if n/a
  std::int32_t replica = 0;            // mini-batch replica id
};

struct Task {
  std::function<void()> fn;
  TaskSpec spec;
  std::vector<TaskId> successors;
  std::uint32_t num_deps = 0;      // direct predecessors
  TaskId affinity_pred = kInvalidTask;  // producer of first input (locality)
  std::size_t first_input_bytes = 0;    // size hint of that input
};

class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;
  TaskGraph(TaskGraph&&) noexcept = default;
  TaskGraph& operator=(TaskGraph&&) noexcept = default;

  /// Submits a task; dependencies are resolved immediately against all
  /// previously submitted tasks. Returns the task's id (creation order).
  /// When `preds_out` is non-null it receives the deduplicated direct
  /// predecessors (used by Runtime's dynamic-submission sessions to count
  /// only still-incomplete dependencies).
  TaskId add(std::function<void()> fn, std::span<const Access> accesses,
             TaskSpec spec = {}, std::vector<TaskId>* preds_out = nullptr);

  /// Convenience overload for initializer lists.
  TaskId add(std::function<void()> fn, std::initializer_list<Access> accesses,
             TaskSpec spec = {}, std::vector<TaskId>* preds_out = nullptr) {
    return add(std::move(fn),
               std::span<const Access>(accesses.begin(), accesses.size()),
               std::move(spec), preds_out);
  }

  /// Like add(), but defers edge insertion: dependencies are *resolved*
  /// (address table updated, `preds_out` filled with the deduplicated
  /// direct predecessors) without touching any predecessor's successor
  /// list. The caller then inserts each edge via link(), interleaved with
  /// whatever synchronization it needs — Runtime uses this to order edge
  /// appends against concurrent completion snapshots with a per-task lock.
  /// An empty access list means an independent task: the address table is
  /// not consulted at all, so synthetic addresses are never needed.
  TaskId add_unlinked(std::function<void()> fn,
                      std::span<const Access> accesses, TaskSpec spec,
                      std::vector<TaskId>* preds_out);

  /// Inserts the edge pred → succ (updates successor list, num_deps and
  /// edge_count). Pair with add_unlinked(); `pred < succ` required.
  void link(TaskId pred, TaskId succ);

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  [[nodiscard]] const Task& task(TaskId id) const { return tasks_[id]; }
  [[nodiscard]] Task& task(TaskId id) { return tasks_[id]; }

  /// Tasks with no predecessors (ready at time 0).
  [[nodiscard]] std::vector<TaskId> roots() const;

  /// Total directed edges (for stats / tests).
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// Longest path length in tasks (unit weights). O(V+E).
  [[nodiscard]] std::size_t critical_path_length() const;

  /// Longest path using per-task weights (e.g. measured ns).
  [[nodiscard]] std::uint64_t critical_path_cost(
      std::span<const std::uint64_t> cost_ns) const;

  /// True if `pred` precedes `succ` transitively. O(V+E); test helper.
  [[nodiscard]] bool reaches(TaskId pred, TaskId succ) const;

  /// Releases the address bookkeeping used during construction (the graph
  /// stays executable). Call after the last add() on large graphs.
  void seal();

 private:
  struct AddressState {
    TaskId last_writer = kInvalidTask;
    std::vector<TaskId> readers_since_write;
  };

  void add_edge(TaskId pred, TaskId succ);

  // Deque: element addresses stay valid while the graph grows, so a
  // Runtime session can execute tasks concurrently with add() calls.
  std::deque<Task> tasks_;
  std::unordered_map<const void*, AddressState> address_table_;
  std::size_t edge_count_ = 0;
  // Scratch used in add() to dedup predecessor ids (cleared each call).
  std::vector<TaskId> scratch_preds_;
};

}  // namespace bpar::taskrt
