// Cache-line aligned allocation for numeric buffers.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace bpar::tensor {

inline constexpr std::size_t kCacheLineBytes = 64;

struct AlignedDeleter {
  void operator()(float* p) const noexcept { ::operator delete[](p, std::align_val_t{kCacheLineBytes}); }
};

using AlignedFloatPtr = std::unique_ptr<float[], AlignedDeleter>;

/// Allocates `n` floats aligned to a cache line. `n == 0` yields nullptr.
inline AlignedFloatPtr allocate_floats(std::size_t n) {
  if (n == 0) return nullptr;
  auto* p = static_cast<float*>(
      ::operator new[](n * sizeof(float), std::align_val_t{kCacheLineBytes}));
  return AlignedFloatPtr(p);
}

}  // namespace bpar::tensor
