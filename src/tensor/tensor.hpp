// Owning matrices and non-owning views over float data.
//
// Everything in the library computes on float32 (matching the paper's MKL
// setup). A `Matrix` owns a cache-line-aligned, zero-initialized buffer;
// `MatrixView` / `ConstMatrixView` are cheap row-major views with a leading
// dimension so sub-blocks (e.g. one gate slice of a fused gate buffer) can
// alias owned storage without copies.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>

#include "tensor/aligned.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace bpar::tensor {

struct ConstMatrixView {
  const float* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;  // leading dimension (row stride in elements)

  [[nodiscard]] const float& at(int r, int c) const {
    BPAR_DCHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    return data[static_cast<std::size_t>(r) * ld + c];
  }
  [[nodiscard]] std::span<const float> row(int r) const {
    BPAR_DCHECK(r >= 0 && r < rows);
    return {data + static_cast<std::size_t>(r) * ld,
            static_cast<std::size_t>(cols)};
  }
  [[nodiscard]] ConstMatrixView block(int r0, int c0, int nr, int nc) const {
    BPAR_DCHECK(r0 >= 0 && c0 >= 0 && r0 + nr <= rows && c0 + nc <= cols);
    return {data + static_cast<std::size_t>(r0) * ld + c0, nr, nc, ld};
  }
  [[nodiscard]] bool contiguous() const { return ld == cols; }
  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(rows) * cols;
  }
};

struct MatrixView {
  float* data = nullptr;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  [[nodiscard]] float& at(int r, int c) const {
    BPAR_DCHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    return data[static_cast<std::size_t>(r) * ld + c];
  }
  [[nodiscard]] std::span<float> row(int r) const {
    BPAR_DCHECK(r >= 0 && r < rows);
    return {data + static_cast<std::size_t>(r) * ld,
            static_cast<std::size_t>(cols)};
  }
  [[nodiscard]] MatrixView block(int r0, int c0, int nr, int nc) const {
    BPAR_DCHECK(r0 >= 0 && c0 >= 0 && r0 + nr <= rows && c0 + nc <= cols);
    return {data + static_cast<std::size_t>(r0) * ld + c0, nr, nc, ld};
  }
  [[nodiscard]] bool contiguous() const { return ld == cols; }
  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(rows) * cols;
  }

  // NOLINTNEXTLINE(google-explicit-constructor): views decay naturally.
  operator ConstMatrixView() const { return {data, rows, cols, ld}; }
};

/// Owning row-major matrix. Zero-initialized on construction/resize.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  // Moves hand the accounted bytes over with the storage, so the source
  // must forget its shape (obs::tensor_memory accounting, DESIGN.md §5j).
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(Matrix&& other) noexcept;
  ~Matrix();

  void resize(int rows, int cols);
  void zero();

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(rows_) * cols_;
  }
  [[nodiscard]] float* data() { return storage_.get(); }
  [[nodiscard]] const float* data() const { return storage_.get(); }
  [[nodiscard]] float& at(int r, int c) { return view().at(r, c); }
  [[nodiscard]] const float& at(int r, int c) const { return cview().at(r, c); }

  [[nodiscard]] MatrixView view() {
    return {storage_.get(), rows_, cols_, cols_};
  }
  [[nodiscard]] ConstMatrixView cview() const {
    return {storage_.get(), rows_, cols_, cols_};
  }
  [[nodiscard]] ConstMatrixView view() const { return cview(); }

 private:
  int rows_ = 0;
  int cols_ = 0;
  AlignedFloatPtr storage_;
};

// ---- initialization and comparison helpers ----

void fill_uniform(MatrixView m, util::Rng& rng, float lo, float hi);
void fill_normal(MatrixView m, util::Rng& rng, float mean, float stddev);
void fill_constant(MatrixView m, float value);
/// Classic small-uniform RNN weight init: U(-scale, scale).
void fill_weights(MatrixView m, util::Rng& rng, float scale);

void copy(ConstMatrixView src, MatrixView dst);

[[nodiscard]] float max_abs_diff(ConstMatrixView a, ConstMatrixView b);
[[nodiscard]] bool allclose(ConstMatrixView a, ConstMatrixView b,
                            float atol = 1e-5F, float rtol = 1e-5F);
[[nodiscard]] double l2_norm(ConstMatrixView m);
[[nodiscard]] double sum(ConstMatrixView m);
[[nodiscard]] bool all_finite(ConstMatrixView m);

// ---- binary serialization (shape header + raw float payload) ----

void write_matrix(std::ostream& os, const Matrix& m);
/// Reads a matrix written by write_matrix; the shape must match `m`.
void read_matrix(std::istream& is, Matrix& m);
/// Reads a matrix written by write_matrix, resizing `m` to the stored shape.
void read_matrix_any_shape(std::istream& is, Matrix& m);

}  // namespace bpar::tensor
