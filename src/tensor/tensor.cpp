#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>

#include "obs/memory.hpp"

namespace bpar::tensor {

namespace {

// Matrix backing stores are where virtually all of the library's heap
// lives (weights, activations, workspaces), so this is the one funnel the
// tensor-arena memory accounting needs.
std::uint64_t matrix_bytes(std::size_t count) {
  return static_cast<std::uint64_t>(count) * sizeof(float);
}

}  // namespace

Matrix::Matrix(int rows, int cols) { resize(rows, cols); }

Matrix::Matrix(const Matrix& other) { *this = other; }

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  resize(other.rows_, other.cols_);
  if (count() != 0) {
    std::memcpy(storage_.get(), other.storage_.get(), count() * sizeof(float));
  }
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      storage_(std::move(other.storage_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  if (count() != 0) obs::tensor_memory().on_free(matrix_bytes(count()));
  rows_ = other.rows_;
  cols_ = other.cols_;
  storage_ = std::move(other.storage_);
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

Matrix::~Matrix() {
  if (count() != 0) obs::tensor_memory().on_free(matrix_bytes(count()));
}

void Matrix::resize(int rows, int cols) {
  BPAR_CHECK(rows >= 0 && cols >= 0, "bad shape ", rows, "x", cols);
  if (count() != 0) obs::tensor_memory().on_free(matrix_bytes(count()));
  rows_ = rows;
  cols_ = cols;
  storage_ = allocate_floats(count());
  if (count() != 0) obs::tensor_memory().on_alloc(matrix_bytes(count()));
  zero();
}

void Matrix::zero() {
  if (count() != 0) std::memset(storage_.get(), 0, count() * sizeof(float));
}

void fill_uniform(MatrixView m, util::Rng& rng, float lo, float hi) {
  for (int r = 0; r < m.rows; ++r) {
    for (float& v : m.row(r)) {
      v = static_cast<float>(
          rng.uniform(static_cast<double>(lo), static_cast<double>(hi)));
    }
  }
}

void fill_normal(MatrixView m, util::Rng& rng, float mean, float stddev) {
  for (int r = 0; r < m.rows; ++r) {
    for (float& v : m.row(r)) {
      v = static_cast<float>(rng.normal(static_cast<double>(mean),
                                        static_cast<double>(stddev)));
    }
  }
}

void fill_constant(MatrixView m, float value) {
  for (int r = 0; r < m.rows; ++r) {
    std::ranges::fill(m.row(r), value);
  }
}

void fill_weights(MatrixView m, util::Rng& rng, float scale) {
  fill_uniform(m, rng, -scale, scale);
}

void copy(ConstMatrixView src, MatrixView dst) {
  BPAR_CHECK(src.rows == dst.rows && src.cols == dst.cols,
             "copy shape mismatch");
  for (int r = 0; r < src.rows; ++r) {
    std::memcpy(dst.row(r).data(), src.row(r).data(),
                static_cast<std::size_t>(src.cols) * sizeof(float));
  }
}

float max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  BPAR_CHECK(a.rows == b.rows && a.cols == b.cols, "shape mismatch");
  float worst = 0.0F;
  for (int r = 0; r < a.rows; ++r) {
    for (int c = 0; c < a.cols; ++c) {
      worst = std::max(worst, std::abs(a.at(r, c) - b.at(r, c)));
    }
  }
  return worst;
}

bool allclose(ConstMatrixView a, ConstMatrixView b, float atol, float rtol) {
  if (a.rows != b.rows || a.cols != b.cols) return false;
  for (int r = 0; r < a.rows; ++r) {
    for (int c = 0; c < a.cols; ++c) {
      const float x = a.at(r, c);
      const float y = b.at(r, c);
      if (std::abs(x - y) > atol + rtol * std::abs(y)) return false;
    }
  }
  return true;
}

double l2_norm(ConstMatrixView m) {
  double acc = 0.0;
  for (int r = 0; r < m.rows; ++r) {
    for (const float v : m.row(r)) {
      acc += static_cast<double>(v) * static_cast<double>(v);
    }
  }
  return std::sqrt(acc);
}

double sum(ConstMatrixView m) {
  double acc = 0.0;
  for (int r = 0; r < m.rows; ++r) {
    for (const float v : m.row(r)) acc += static_cast<double>(v);
  }
  return acc;
}

void write_matrix(std::ostream& os, const Matrix& m) {
  const int shape[2] = {m.rows(), m.cols()};
  os.write(reinterpret_cast<const char*>(shape), sizeof shape);
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.count() * sizeof(float)));
}

namespace {
void read_matrix_impl(std::istream& is, Matrix& m, bool allow_resize) {
  int shape[2] = {0, 0};
  is.read(reinterpret_cast<char*>(shape), sizeof shape);
  BPAR_CHECK(is.good(), "truncated matrix stream");
  if (allow_resize) {
    m.resize(shape[0], shape[1]);
  } else {
    BPAR_CHECK(shape[0] == m.rows() && shape[1] == m.cols(),
               "matrix shape mismatch: got ", shape[0], "x", shape[1],
               " want ", m.rows(), "x", m.cols());
  }
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.count() * sizeof(float)));
  BPAR_CHECK(is.good(), "truncated matrix payload");
}
}  // namespace

void read_matrix(std::istream& is, Matrix& m) {
  read_matrix_impl(is, m, false);
}

void read_matrix_any_shape(std::istream& is, Matrix& m) {
  read_matrix_impl(is, m, true);
}

bool all_finite(ConstMatrixView m) {
  for (int r = 0; r < m.rows; ++r) {
    for (const float v : m.row(r)) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

}  // namespace bpar::tensor
