// Attention on the task runtime — the paper's future-work extension (§VI):
// a single-head self-attention classifier trained entirely through the
// barrier-free task graph (per-sequence forward, head, and backward tasks
// scheduled by data dependencies).
//
//   ./attention_demo [--sequences N] [--steps N] [--workers N]
#include <cstdio>

#include "attn/attention_graph.hpp"
#include "taskrt/runtime.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("attention_demo",
                             "self-attention classifier on the task runtime");
  args.add_int("sequences", 32, "sequences per batch");
  args.add_int("steps", 60, "training steps");
  args.add_int("workers", 4, "worker threads");
  args.add_int("dim", 16, "model width");
  args.add_int("seq", 10, "timesteps per sequence");
  if (!args.parse(argc, argv)) return 1;

  bpar::attn::AttentionModelConfig cfg;
  cfg.dim = static_cast<int>(args.get_int("dim"));
  cfg.seq_length = static_cast<int>(args.get_int("seq"));
  cfg.num_classes = 4;
  bpar::attn::AttentionModel model(cfg);

  // Toy task: the label is the channel group with the boosted mean.
  const int count = static_cast<int>(args.get_int("sequences"));
  bpar::util::Rng rng(11);
  std::vector<bpar::tensor::Matrix> sequences;
  std::vector<int> labels;
  for (int s = 0; s < count; ++s) {
    const int label = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(cfg.num_classes)));
    labels.push_back(label);
    bpar::tensor::Matrix x(cfg.seq_length, cfg.dim);
    for (int t = 0; t < cfg.seq_length; ++t) {
      for (int d = 0; d < cfg.dim; ++d) {
        x.at(t, d) = static_cast<float>(
            (d % cfg.num_classes == label ? 0.8 : 0.0) +
            rng.normal(0.0, 0.35));
      }
    }
    sequences.push_back(std::move(x));
  }

  bpar::attn::AttentionProgram program(model, count, /*training=*/true);
  program.load(sequences, labels);
  bpar::taskrt::Runtime runtime(
      {.num_workers = static_cast<int>(args.get_int("workers")),
       .policy = bpar::taskrt::SchedulerPolicy::kLocalityAware});
  std::printf(
      "attention classifier: %zu parameters, %zu tasks per step, critical "
      "path %zu\n\n",
      model.param_count(), program.graph().size(),
      program.graph().critical_path_length());

  const int steps = static_cast<int>(args.get_int("steps"));
  for (int step = 0; step < steps; ++step) {
    program.prepare();
    runtime.run(program.graph());
    bpar::attn::apply_sgd(model, program.grads(), 0.4F);
    if (step % 10 == 0 || step == steps - 1) {
      int correct = 0;
      for (int s = 0; s < count; ++s) {
        if (program.prediction(s) == labels[static_cast<std::size_t>(s)]) {
          ++correct;
        }
      }
      std::printf("step %3d: loss %.4f, accuracy %3d%%\n", step,
                  program.loss(), 100 * correct / count);
    }
  }
  return 0;
}
