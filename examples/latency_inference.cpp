// Real-time inference latency — the paper's motivating scenario for CPUs
// ("the low latency they display for small batch sizes", §I): stream
// single utterances (batch 1) through a trained BLSTM and report latency
// percentiles for the sequential, per-layer-barrier, and B-Par executors.
//
//   ./latency_inference [--requests N] [--workers N] [--hidden N]
#include <cstdio>
#include <vector>

#include "core/bpar.hpp"
#include "data/tidigits.hpp"
#include "util/cli.hpp"
#include "util/percentiles.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("latency_inference",
                             "batch-1 streaming inference latency");
  args.add_int("requests", 200, "inference requests to time");
  args.add_int("workers", 4, "worker threads");
  args.add_int("hidden", 64, "hidden size");
  args.add_int("layers", 4, "BLSTM layers");
  args.add_int("seq", 40, "frames per utterance");
  if (!args.parse(argc, argv)) return 1;

  const int requests = static_cast<int>(args.get_int("requests"));
  bpar::data::TidigitsConfig dcfg;
  dcfg.feature_dim = 16;
  dcfg.seq_length = static_cast<int>(args.get_int("seq"));
  dcfg.num_utterances = requests;
  bpar::data::TidigitsCorpus corpus(dcfg);
  const auto batches = corpus.make_batches(1);  // one utterance per request

  bpar::rnn::NetworkConfig cfg;
  cfg.cell = bpar::rnn::CellType::kLstm;
  cfg.input_size = dcfg.feature_dim;
  cfg.hidden_size = static_cast<int>(args.get_int("hidden"));
  cfg.num_layers = static_cast<int>(args.get_int("layers"));
  cfg.seq_length = dcfg.seq_length;
  cfg.batch_size = 1;
  cfg.num_classes = bpar::data::kTidigitsClasses;

  bpar::Model model(cfg);
  std::printf("model: %zu parameters, %d requests of %d frames\n\n",
              model.network().param_count(), requests, dcfg.seq_length);
  std::printf("%-14s %8s %8s %8s %8s  (ms per utterance)\n", "executor",
              "p50", "p95", "p99", "mean");

  for (const auto kind :
       {bpar::ExecutorKind::kSequential, bpar::ExecutorKind::kLayerBarrier,
        bpar::ExecutorKind::kBPar}) {
    model.select_executor(
        kind, {.num_workers = static_cast<int>(args.get_int("workers"))});
    model.infer(batches[0]);  // warm up (graph build, caches)
    std::vector<double> samples;
    samples.reserve(batches.size());
    for (const auto& batch : batches) {
      samples.push_back(model.infer(batch).wall_ms);
    }
    const auto p = bpar::util::percentiles(std::move(samples));
    std::printf("%-14s %8.3f %8.3f %8.3f %8.3f\n",
                bpar::executor_kind_name(kind), p.p50, p.p95, p.p99, p.mean);
  }
  std::printf(
      "\nB-Par exposes model parallelism even at batch 1 — on a multi-core\n"
      "machine its tail latency beats the layer-serial executors (on this\n"
      "container's single core, expect parity plus scheduling overhead).\n");
  return 0;
}
