// Graph inspector: builds the B-Par task graph for a small BRNN, prints a
// per-kind breakdown, exports a Graphviz DOT rendering of the dependency
// structure (the paper's Fig. 2, generated instead of hand-drawn), and —
// after a traced execution — a Chrome-tracing timeline.
//
//   ./graph_inspect [--layers N] [--seq N] [--dot out.dot] [--trace out.json]
#include <cstdio>

#include "core/bpar.hpp"
#include "graph/brnn_graph.hpp"
#include "graph/passes/registry.hpp"
#include "taskrt/export.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("graph_inspect",
                             "inspect and export a B-Par task graph");
  args.add_int("layers", 3, "BRNN layers");
  args.add_int("seq", 3, "sequence length");
  args.add_int("hidden", 8, "hidden size");
  args.add_int("batch", 4, "batch size");
  args.add_int("workers", 4, "worker threads for the traced run");
  args.add_string("dot", "bpar_graph.dot", "DOT output path (empty = skip)");
  args.add_string("trace", "bpar_trace.json",
                  "Chrome-tracing output path (empty = skip)");
  args.add_flag("barriers",
                "emulate per-layer barriers (schedule profile 'framework')");
  args.add_string("passes", "default",
                  "graph-optimizer pass pipeline: comma-separated list, "
                  "'default', 'none', or 'list' to print the registry");
  if (!args.parse(argc, argv)) return 1;

  if (args.get_string("passes") == "list") {
    std::printf("registered graph passes:\n");
    for (const std::string& name : bpar::graph::passes::known_passes()) {
      std::printf("  %s\n", name.c_str());
    }
    std::printf("default pipeline: %s\n",
                std::string(bpar::graph::passes::kDefaultPassSpec).c_str());
    return 0;
  }

  bpar::rnn::NetworkConfig cfg;
  cfg.cell = bpar::rnn::CellType::kLstm;
  cfg.input_size = 4;
  cfg.hidden_size = static_cast<int>(args.get_int("hidden"));
  cfg.num_layers = static_cast<int>(args.get_int("layers"));
  cfg.seq_length = static_cast<int>(args.get_int("seq"));
  cfg.batch_size = static_cast<int>(args.get_int("batch"));
  cfg.num_classes = 3;
  bpar::rnn::Network net(cfg);

  bpar::graph::BuildOptions bo;
  if (args.flag("barriers")) bo.schedule_profile = "framework";
  bo.passes = args.get_string("passes");
  bpar::graph::TrainingProgram program(net, cfg.batch_size, bo);
  const auto& graph = program.graph();

  std::printf("graph: %zu tasks, %zu edges, critical path %zu\n",
              graph.size(), graph.edge_count(),
              graph.critical_path_length());
  if (!program.pass_signature().empty()) {
    std::printf("graph passes: %s\n", program.pass_signature().c_str());
  }
  std::size_t counts[16] = {};
  for (bpar::taskrt::TaskId id = 0; id < graph.size(); ++id) {
    ++counts[static_cast<std::size_t>(graph.task(id).spec.kind)];
  }
  for (std::size_t k = 0; k < 16; ++k) {
    if (counts[k] == 0) continue;
    std::printf("  %-12s %zu\n",
                bpar::taskrt::task_kind_name(
                    static_cast<bpar::taskrt::TaskKind>(k)),
                counts[k]);
  }

  if (!args.get_string("dot").empty()) {
    bpar::taskrt::write_dot_file(graph, args.get_string("dot"));
    std::printf("wrote %s (render with: dot -Tsvg %s -o graph.svg)\n",
                args.get_string("dot").c_str(),
                args.get_string("dot").c_str());
  }

  if (!args.get_string("trace").empty()) {
    // One traced training run with synthetic data.
    bpar::util::Rng rng(1);
    bpar::rnn::BatchData batch;
    batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
    for (auto& m : batch.x) {
      m.resize(cfg.batch_size, cfg.input_size);
      bpar::tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
    }
    batch.labels.assign(static_cast<std::size_t>(cfg.batch_size), 1);
    program.load_batch(batch);
    program.prepare();
    bpar::taskrt::Runtime runtime(
        {.num_workers = static_cast<int>(args.get_int("workers")),
         .policy = bpar::taskrt::SchedulerPolicy::kLocalityAware,
         .record_trace = true});
    const auto stats = runtime.run(program.graph());
    bpar::taskrt::write_chrome_trace_file(graph, stats,
                                          args.get_string("trace"));
    std::printf(
        "wrote %s (open in chrome://tracing) — %.2f ms wall, max "
        "concurrency %d, locality hits %zu/%zu\n",
        args.get_string("trace").c_str(), stats.wall_ms(),
        stats.max_concurrency, stats.locality_hits,
        stats.tasks_with_affinity);
  }
  return 0;
}
