// Speech-digit classification — the paper's TIDIGITS workload (many-to-one
// BLSTM) on the synthetic connected-digit corpus.
//
// Trains a bidirectional LSTM classifier and reports per-epoch loss and
// accuracy on a held-out split, then compares B-Par batch time against
// B-Seq, the per-layer-barrier baseline, and the sequential reference.
//
//   ./speech_digits [--epochs N] [--workers N] [--replicas N] [--hidden N]
//
// Resilience knobs: --watchdog-ms arms the runtime watchdog, --faults
// injects deterministic faults, --checkpoint-every / --keep-checkpoints
// rotate crash-safe checkpoints (the run resumes from the newest good one),
// and --max-retries bounds per-batch recovery attempts.
#include <cstdio>

#include "core/bpar.hpp"
#include "core/checkpoint.hpp"
#include "data/tidigits.hpp"
#include "obs/session.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("speech_digits",
                             "many-to-one BLSTM on synthetic TIDIGITS");
  args.add_int("epochs", 10, "training epochs");
  args.add_int("workers", 4, "worker threads");
  args.add_int("replicas", 4, "mini-batches per batch (mbs:N)");
  args.add_int("hidden", 24, "hidden size");
  args.add_int("layers", 2, "BLSTM layers");
  args.add_int("utterances", 384, "corpus size");
  args.add_int("watchdog-ms", 0, "runtime no-progress deadline (0 = off)");
  args.add_string("faults", "", "fault-injection spec (e.g. seed=1,throw=0.01)");
  args.add_int("checkpoint-every", 0, "checkpoint every N batches (0 = off)");
  args.add_int("keep-checkpoints", 3, "rotated checkpoints to keep");
  args.add_string("checkpoint-prefix", "speech_digits",
                  "checkpoint path prefix");
  args.add_int("max-retries", 2, "retries per failed batch before fallback");
  bpar::obs::add_cli_flags(args);
  if (!args.parse(argc, argv)) return 1;
  bpar::obs::ObsSession session("speech_digits", args,
                                bpar::obs::ReportMode::kJsonl);

  // Synthesize the corpus and split train/test 3:1.
  bpar::data::TidigitsConfig dcfg;
  dcfg.feature_dim = 12;
  dcfg.seq_length = 24;
  dcfg.num_utterances = static_cast<int>(args.get_int("utterances"));
  bpar::data::TidigitsCorpus corpus(dcfg);
  constexpr int kBatch = 32;
  auto batches = corpus.make_batches(kBatch);
  const std::size_t test_count = batches.size() / 4;
  std::vector<bpar::rnn::BatchData> test_batches(
      std::make_move_iterator(batches.end() - static_cast<long>(test_count)),
      std::make_move_iterator(batches.end()));
  batches.resize(batches.size() - test_count);
  std::printf("corpus: %d utterances, %zu train / %zu test batches of %d\n",
              corpus.size(), batches.size(), test_batches.size(), kBatch);

  bpar::rnn::NetworkConfig cfg;
  cfg.cell = bpar::rnn::CellType::kLstm;
  cfg.input_size = dcfg.feature_dim;
  cfg.hidden_size = static_cast<int>(args.get_int("hidden"));
  cfg.num_layers = static_cast<int>(args.get_int("layers"));
  cfg.seq_length = dcfg.seq_length;
  cfg.batch_size = kBatch;
  cfg.num_classes = bpar::data::kTidigitsClasses;

  bpar::Model model(cfg);
  bpar::ExecutorOptions exec_opts;
  exec_opts.num_workers = static_cast<int>(args.get_int("workers"));
  exec_opts.num_replicas = static_cast<int>(args.get_int("replicas"));
  exec_opts.watchdog_ms =
      static_cast<std::uint32_t>(args.get_int("watchdog-ms"));
  if (const auto& spec = args.get_string("faults"); !spec.empty()) {
    exec_opts.faults = bpar::taskrt::FaultSpec::parse(spec);
  }
  model.select_executor(bpar::ExecutorKind::kBPar, exec_opts);
  model.set_optimizer(std::make_unique<bpar::train::Adam>(
      bpar::train::Adam::Config{.learning_rate = 4e-3F}));
  std::printf("model: %zu parameters, executor %s\n",
              model.network().param_count(), model.executor().name());

  // Fault recovery: retry failed batches, degrade to the sequential
  // reference executor when retries run out, rotate crash-safe checkpoints,
  // and resume from the newest good checkpoint if one exists.
  bpar::exec::SequentialExecutor fallback(model.network());
  bpar::CheckpointManager checkpoints(
      args.get_string("checkpoint-prefix"),
      static_cast<int>(args.get_int("keep-checkpoints")));
  bpar::train::TrainerOptions topts;
  topts.max_retries = static_cast<int>(args.get_int("max-retries"));
  topts.fallback = &fallback;
  topts.checkpoint_every =
      static_cast<std::uint64_t>(args.get_int("checkpoint-every"));
  if (topts.checkpoint_every > 0) {
    if (const auto step = checkpoints.load_latest_good(model)) {
      std::printf("resumed from checkpoint step %llu\n",
                  static_cast<unsigned long long>(*step));
    }
    topts.on_checkpoint = [&](std::uint64_t step) {
      checkpoints.save(model, step);
    };
  }
  bpar::train::Trainer trainer(model.network(), model.executor(),
                               model.optimizer(), topts);
  const int epochs = static_cast<int>(args.get_int("epochs"));
  std::printf("\nepoch  train-loss  test-loss  test-acc\n");
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto train_stats = trainer.train_epoch(batches);
    const auto eval_stats = trainer.evaluate(test_batches);
    std::printf("%5d  %10.4f  %9.4f  %7.1f%%%s\n", epoch,
                train_stats.mean_loss, eval_stats.mean_loss,
                100.0 * eval_stats.accuracy,
                trainer.degraded() ? "  [degraded]" : "");
    session.log("epoch",
                {{"epoch", static_cast<double>(epoch)},
                 {"train_loss", train_stats.mean_loss},
                 {"test_loss", eval_stats.mean_loss},
                 {"test_accuracy", eval_stats.accuracy},
                 {"wall_ms", train_stats.wall_ms},
                 {"retries", static_cast<double>(train_stats.retries)}});
  }

  // Executor comparison on a single training batch (same weights).
  std::printf("\nper-batch training time by executor:\n");
  for (const auto kind :
       {bpar::ExecutorKind::kSequential, bpar::ExecutorKind::kLayerBarrier,
        bpar::ExecutorKind::kBSeq, bpar::ExecutorKind::kBPar}) {
    bpar::ExecutorOptions bench_opts;
    bench_opts.num_workers = static_cast<int>(args.get_int("workers"));
    bench_opts.num_replicas = static_cast<int>(args.get_int("replicas"));
    model.select_executor(kind, bench_opts);
    auto& executor = model.executor();
    executor.train_batch(batches[0]);  // warm-up (graph build etc.)
    double best_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      best_ms = std::min(best_ms, executor.train_batch(batches[0]).wall_ms);
    }
    std::printf("  %-14s %8.2f ms\n", bpar::executor_kind_name(kind),
                best_ms);
  }
  return 0;
}
