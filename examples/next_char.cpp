// Next-character prediction — the paper's Wikipedia workload: a
// many-to-many bidirectional GRU over the synthetic character corpus.
// After training, generates a text sample with a batch-1 copy of the model.
//
//   ./next_char [--epochs N] [--workers N] [--hidden N] [--generate N]
//
// Resilience knobs: --watchdog-ms arms the runtime watchdog, --faults
// injects deterministic faults (see taskrt/fault.hpp for the spec syntax),
// --checkpoint-every / --keep-checkpoints rotate crash-safe checkpoints,
// and --max-retries bounds per-batch recovery attempts.
#include <cstdio>
#include <sstream>

#include "core/bpar.hpp"
#include "core/checkpoint.hpp"
#include "data/wikipedia.hpp"
#include "obs/session.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

// Greedy generation: slide a window over generated text; the model's
// prediction at the final timestep picks the next character.
std::string generate_text(bpar::rnn::Network& trained,
                          const bpar::data::WikipediaCorpus& corpus,
                          int chars_to_generate) {
  const auto& cfg = trained.config();
  bpar::rnn::NetworkConfig gen_cfg = cfg;
  gen_cfg.batch_size = 1;
  bpar::rnn::Network gen_net(gen_cfg);
  std::stringstream weights;
  trained.save(weights);
  gen_net.load(weights);
  bpar::exec::SequentialExecutor executor(gen_net);

  std::string text = corpus.text().substr(
      0, static_cast<std::size_t>(cfg.seq_length));
  const int steps = cfg.seq_length;
  bpar::rnn::BatchData window;
  window.x.resize(static_cast<std::size_t>(steps));
  for (auto& m : window.x) m.resize(1, cfg.input_size);
  window.labels.assign(static_cast<std::size_t>(steps), 0);

  for (int i = 0; i < chars_to_generate; ++i) {
    for (int t = 0; t < steps; ++t) {
      const char c = text[text.size() - static_cast<std::size_t>(steps - t)];
      const auto emb = corpus.embedding(corpus.char_id(c));
      auto row = window.x[static_cast<std::size_t>(t)].view().row(0);
      std::copy(emb.begin(), emb.end(), row.begin());
    }
    const auto result = executor.infer(window);
    text.push_back(corpus.id_char(result.prediction(steps - 1, 0)));
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  bpar::util::ArgParser args("next_char",
                             "many-to-many BGRU next-character prediction");
  args.add_int("epochs", 8, "training epochs");
  args.add_int("workers", 4, "worker threads");
  args.add_int("replicas", 2, "mini-batches per batch");
  args.add_int("hidden", 48, "hidden size");
  args.add_int("layers", 2, "BGRU layers");
  args.add_int("batches", 8, "training batches per epoch");
  args.add_int("generate", 120, "characters to generate after training");
  args.add_int("watchdog-ms", 0, "runtime no-progress deadline (0 = off)");
  args.add_string("faults", "", "fault-injection spec (e.g. seed=1,throw=0.01)");
  args.add_int("checkpoint-every", 0, "checkpoint every N batches (0 = off)");
  args.add_int("keep-checkpoints", 3, "rotated checkpoints to keep");
  args.add_string("checkpoint-prefix", "next_char", "checkpoint path prefix");
  args.add_int("max-retries", 2, "retries per failed batch before fallback");
  bpar::obs::add_cli_flags(args);
  if (!args.parse(argc, argv)) return 1;
  bpar::obs::ObsSession session("next_char", args,
                                bpar::obs::ReportMode::kJsonl);

  bpar::data::WikipediaConfig wcfg;
  wcfg.input_size = 24;
  wcfg.seq_length = 24;
  wcfg.corpus_chars = 200000;
  bpar::data::WikipediaCorpus corpus(wcfg);
  constexpr int kBatch = 24;
  const auto batches = corpus.make_batches(
      kBatch, static_cast<int>(args.get_int("batches")));
  std::printf("corpus: %zu chars, vocab %d, %zu batches of %d x %d steps\n",
              corpus.text().size(), corpus.vocab_size(), batches.size(),
              kBatch, wcfg.seq_length);

  bpar::rnn::NetworkConfig cfg;
  cfg.cell = bpar::rnn::CellType::kGru;
  cfg.input_size = wcfg.input_size;
  cfg.hidden_size = static_cast<int>(args.get_int("hidden"));
  cfg.num_layers = static_cast<int>(args.get_int("layers"));
  cfg.seq_length = wcfg.seq_length;
  cfg.batch_size = kBatch;
  cfg.num_classes = corpus.vocab_size();
  cfg.many_to_many = true;

  bpar::Model model(cfg);
  bpar::ExecutorOptions exec_opts;
  exec_opts.num_workers = static_cast<int>(args.get_int("workers"));
  exec_opts.num_replicas = static_cast<int>(args.get_int("replicas"));
  exec_opts.watchdog_ms =
      static_cast<std::uint32_t>(args.get_int("watchdog-ms"));
  if (const auto& spec = args.get_string("faults"); !spec.empty()) {
    exec_opts.faults = bpar::taskrt::FaultSpec::parse(spec);
  }
  model.select_executor(bpar::ExecutorKind::kBPar, exec_opts);
  model.set_optimizer(std::make_unique<bpar::train::Adam>(
      bpar::train::Adam::Config{.learning_rate = 5e-3F}));
  std::printf("model: %zu parameters (many-to-many BGRU)\n\n",
              model.network().param_count());

  // Fault recovery: retry failed batches, degrade to the sequential
  // reference if the task-based executor keeps failing, and rotate
  // crash-safe checkpoints.
  bpar::exec::SequentialExecutor fallback(model.network());
  bpar::CheckpointManager checkpoints(
      args.get_string("checkpoint-prefix"),
      static_cast<int>(args.get_int("keep-checkpoints")));
  bpar::train::TrainerOptions topts;
  topts.max_retries = static_cast<int>(args.get_int("max-retries"));
  topts.fallback = &fallback;
  topts.checkpoint_every =
      static_cast<std::uint64_t>(args.get_int("checkpoint-every"));
  if (topts.checkpoint_every > 0) {
    topts.on_checkpoint = [&](std::uint64_t step) {
      const auto path = checkpoints.save(model, step);
      std::printf("  checkpoint: %s\n", path.c_str());
    };
  }
  bpar::train::Trainer trainer(model.network(), model.executor(),
                               model.optimizer(), topts);

  const int epochs = static_cast<int>(args.get_int("epochs"));
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto stats = trainer.train_epoch(batches);
    std::printf("epoch %2d: loss %.4f (%.1f ms/batch", epoch,
                stats.mean_loss,
                stats.wall_ms / static_cast<double>(batches.size()));
    if (stats.retries > 0) std::printf(", %d retries", stats.retries);
    std::printf(")%s\n", trainer.degraded() ? "  [degraded]" : "");
    session.log("epoch", {{"epoch", static_cast<double>(epoch)},
                          {"loss", stats.mean_loss},
                          {"wall_ms", stats.wall_ms},
                          {"retries", static_cast<double>(stats.retries)},
                          {"rollbacks", static_cast<double>(stats.rollbacks)}});
  }

  const int n = static_cast<int>(args.get_int("generate"));
  if (n > 0) {
    const std::string sample = generate_text(model.network(), corpus, n);
    std::printf("\ngenerated sample:\n---\n%s\n---\n", sample.c_str());
  }
  return 0;
}
