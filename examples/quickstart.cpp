// Quickstart: build a bidirectional LSTM, train it with the B-Par executor,
// and compare against the sequential reference.
//
//   ./quickstart [--workers N] [--replicas N] [--steps N]
#include <cstdio>

#include "core/bpar.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args("quickstart",
                             "minimal B-Par training loop on random data");
  args.add_int("workers", 4, "worker threads");
  args.add_int("replicas", 2, "mini-batches per batch (mbs:N)");
  args.add_int("steps", 30, "training steps");
  if (!args.parse(argc, argv)) return 1;

  // 1. Describe the model: a 3-layer bidirectional LSTM classifier.
  bpar::rnn::NetworkConfig cfg;
  cfg.cell = bpar::rnn::CellType::kLstm;
  cfg.merge = bpar::rnn::MergeOp::kConcat;
  cfg.input_size = 16;
  cfg.hidden_size = 32;
  cfg.num_layers = 3;
  cfg.seq_length = 20;
  cfg.batch_size = 16;
  cfg.num_classes = 4;

  // 2. Create the model and pick the B-Par executor: every RNN cell update
  //    becomes a task, scheduled as soon as its dependencies resolve.
  bpar::Model model(cfg);
  model.select_executor(
      bpar::ExecutorKind::kBPar,
      {.num_workers = static_cast<int>(args.get_int("workers")),
       .num_replicas = static_cast<int>(args.get_int("replicas"))});
  model.set_optimizer(std::make_unique<bpar::train::Adam>(
      bpar::train::Adam::Config{.learning_rate = 3e-3F}));

  // 3. Synthesize a toy batch: label = input channel with the largest mean.
  bpar::util::Rng rng(1);
  bpar::rnn::BatchData batch;
  batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (auto& m : batch.x) m.resize(cfg.batch_size, cfg.input_size);
  batch.labels.resize(static_cast<std::size_t>(cfg.batch_size));
  for (int b = 0; b < cfg.batch_size; ++b) {
    const int label = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(cfg.num_classes)));
    batch.labels[static_cast<std::size_t>(b)] = label;
    for (int t = 0; t < cfg.seq_length; ++t) {
      for (int f = 0; f < cfg.input_size; ++f) {
        batch.x[static_cast<std::size_t>(t)].at(b, f) = static_cast<float>(
            (f % cfg.num_classes == label ? 0.8 : 0.0) +
            rng.normal(0.0, 0.3));
      }
    }
  }

  // 4. Train.
  std::printf("step   loss      tasks   wall(ms)\n");
  const int steps = static_cast<int>(args.get_int("steps"));
  for (int step = 0; step < steps; ++step) {
    const auto result = model.train_batch(batch);
    if (step % 5 == 0 || step == steps - 1) {
      std::printf("%4d   %.4f   %6zu   %8.2f\n", step, result.loss,
                  result.stats.tasks_executed, result.wall_ms);
    }
  }

  // 5. Verify the parallel run produced the same result as sequential.
  const std::vector<int> preds = model.infer(batch).predictions;
  model.select_executor(bpar::ExecutorKind::kSequential);
  const std::vector<int> ref_preds = model.infer(batch).predictions;
  std::printf("\npredictions identical to sequential execution: %s\n",
              preds == ref_preds ? "yes" : "NO (bug!)");
  const double acc =
      bpar::train::accuracy(preds, batch.labels);
  std::printf("training-batch accuracy after %d steps: %.0f%%\n", steps,
              100.0 * acc);
  return 0;
}
