// Scheduler playground: builds the B-Par task graph for a configurable
// BRNN, measures real single-core task costs, and replays the graph in the
// discrete-event simulator across core counts and scheduler policies —
// the workflow behind the paper-reproduction benches.
//
//   ./scheduler_playground [--layers N] [--seq N] [--hidden N] [--batch N]
#include <cstdio>

#include "core/bpar.hpp"
#include "graph/brnn_graph.hpp"
#include "sim/cost_model.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  bpar::util::ArgParser args(
      "scheduler_playground",
      "simulate a BRNN task graph across core counts and policies");
  args.add_int("layers", 4, "BLSTM layers");
  args.add_int("seq", 12, "sequence length");
  args.add_int("hidden", 32, "hidden size");
  args.add_int("batch", 16, "batch size");
  args.add_int("replicas", 4, "mini-batches");
  args.add_string("passes", "default",
                  "graph-optimizer pass pipeline ('default', 'none', or a "
                  "comma-separated pass list)");
  if (!args.parse(argc, argv)) return 1;

  bpar::rnn::NetworkConfig cfg;
  cfg.cell = bpar::rnn::CellType::kLstm;
  cfg.input_size = 16;
  cfg.hidden_size = static_cast<int>(args.get_int("hidden"));
  cfg.num_layers = static_cast<int>(args.get_int("layers"));
  cfg.seq_length = static_cast<int>(args.get_int("seq"));
  cfg.batch_size = static_cast<int>(args.get_int("batch"));
  cfg.num_classes = 8;
  bpar::rnn::Network net(cfg);

  // Build the executable B-Par training graph and run it once for real to
  // measure per-task costs on this machine.
  bpar::graph::BuildOptions bo;
  bo.num_replicas = static_cast<int>(args.get_int("replicas"));
  bo.passes = args.get_string("passes");
  bpar::graph::TrainingProgram program(net, cfg.batch_size, bo);

  bpar::util::Rng rng(3);
  bpar::rnn::BatchData batch;
  batch.x.resize(static_cast<std::size_t>(cfg.seq_length));
  for (auto& m : batch.x) {
    m.resize(cfg.batch_size, cfg.input_size);
    bpar::tensor::fill_uniform(m.view(), rng, -1.0F, 1.0F);
  }
  batch.labels.assign(static_cast<std::size_t>(cfg.batch_size), 0);
  program.load_batch(batch);
  program.prepare();
  bpar::taskrt::Runtime runtime({.num_workers = 1});
  const auto stats = runtime.run(program.graph());
  std::printf("graph: %zu tasks, %zu edges, critical path %zu tasks\n",
              program.graph().size(), program.graph().edge_count(),
              program.graph().critical_path_length());
  std::printf("real single-core run: %.2f ms\n\n", stats.wall_ms());

  const auto cal = bpar::sim::calibrate();
  const auto costs =
      bpar::sim::measured_costs(program.graph(), stats.task_duration_ns, cal);

  bpar::util::Table table({"cores", "policy", "makespan(ms)", "speedup",
                           "efficiency", "avg-tasks", "locality-hits"});
  double base_ms = 0.0;
  for (const int cores : {1, 2, 4, 8, 16, 24, 32, 48}) {
    for (const auto policy : {bpar::taskrt::SchedulerPolicy::kFifo,
                              bpar::taskrt::SchedulerPolicy::kLocalityAware}) {
      bpar::sim::Simulator simulator({.policy = policy, .cores = cores});
      const auto result = simulator.run(program.graph(), costs);
      if (cores == 1 && policy == bpar::taskrt::SchedulerPolicy::kFifo) {
        base_ms = result.makespan_ms;
      }
      table.add_row({std::to_string(cores),
                     bpar::taskrt::scheduler_policy_name(policy),
                     bpar::util::fmt_ms(result.makespan_ms),
                     bpar::util::fmt_speedup(base_ms / result.makespan_ms),
                     bpar::util::fmt(result.parallel_efficiency, 3),
                     bpar::util::fmt(result.avg_concurrency, 1),
                     bpar::util::fmt(100.0 * result.locality_hit_rate(), 1) +
                         "%"});
    }
  }
  table.print("simulated scaling of the B-Par task graph");
  return 0;
}
